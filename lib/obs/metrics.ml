type counter = { mutable c : float }
type gauge = { mutable g : float }

type histogram = {
  upper : float array;  (* finite upper bounds, strictly increasing *)
  bucket_counts : int array;  (* length upper + 1; last = overflow *)
  mutable sum : float;
  mutable count : int;
}

type value = C of counter | G of gauge | H of histogram

type series = { labels : (string * string) list; value : value }

type family = {
  help : string;
  kind : string;  (* "counter" | "gauge" | "histogram" *)
  mutable series : series list;  (* insertion order *)
}

type t = {
  families : (string, family) Hashtbl.t;
  mutable names : string list;  (* insertion order, reversed *)
}

let create () = { families = Hashtbl.create 16; names = [] }

(* ------------------------------------------------------------------ *)
(* name and label validation (Prometheus exposition rules) *)

let valid_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let valid_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let check_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf "Metrics.%s: bad label name %S" name k))
    labels;
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t ~name ~labels ~help ~kind ~make ~cast =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics.register: bad metric name %S" name);
  let labels = check_labels "register" labels in
  let fam =
    match Hashtbl.find_opt t.families name with
    | Some fam ->
      if fam.kind <> kind then
        invalid_arg
          (Printf.sprintf
             "Metrics.register: %s already registered as a %s" name fam.kind);
      fam
    | None ->
      let fam = { help; kind; series = [] } in
      Hashtbl.add t.families name fam;
      t.names <- name :: t.names;
      fam
  in
  match List.find_opt (fun s -> s.labels = labels) fam.series with
  | Some s -> (
    match cast s.value with
    | Some v -> v
    | None -> assert false (* same family, same kind *))
  | None ->
    let v = make () in
    fam.series <- fam.series @ [ { labels; value = v } ];
    match cast v with Some v -> v | None -> assert false

let counter t ?(labels = []) ?(help = "") name =
  register t ~name ~labels ~help ~kind:"counter"
    ~make:(fun () -> C { c = 0. })
    ~cast:(function C c -> Some c | _ -> None)

let gauge t ?(labels = []) ?(help = "") name =
  register t ~name ~labels ~help ~kind:"gauge"
    ~make:(fun () -> G { g = 0. })
    ~cast:(function G g -> Some g | _ -> None)

let histogram t ?(labels = []) ?(help = "") ~buckets name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 0 to n - 1 do
    if not (Float.is_finite buckets.(i)) then
      invalid_arg "Metrics.histogram: non-finite bucket bound";
    if i > 0 && buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must increase strictly"
  done;
  let h =
    register t ~name ~labels ~help ~kind:"histogram"
      ~make:(fun () ->
        H
          { upper = Array.copy buckets;
            bucket_counts = Array.make (n + 1) 0;
            sum = 0.;
            count = 0 })
      ~cast:(function H h -> Some h | _ -> None)
  in
  if h.upper <> buckets then
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s re-registered with different \
                       buckets" name);
  h

let log_buckets ~lo ~hi ~per_decade =
  if lo <= 0. || hi <= lo then
    invalid_arg "Metrics.log_buckets: need 0 < lo < hi";
  if per_decade < 1 then
    invalid_arg "Metrics.log_buckets: per_decade must be >= 1";
  let step = 10. ** (1. /. float_of_int per_decade) in
  let rec build acc b =
    if b >= hi *. (1. +. 1e-12) then List.rev (hi :: acc)
    else build (b :: acc) (b *. step)
  in
  (* regenerate bounds from lo by repeated multiplication; snap the last
     to hi so the range is covered exactly *)
  let bounds = build [] lo in
  let arr = Array.of_list bounds in
  (* deduplicate the tail in case hi lands on the grid *)
  let n = Array.length arr in
  if n >= 2 && arr.(n - 1) <= arr.(n - 2) then Array.sub arr 0 (n - 1) else arr

(* ------------------------------------------------------------------ *)
(* updates *)

let inc_by c by =
  if by < 0. then invalid_arg "Metrics.inc_by: counters only go up";
  c.c <- c.c +. by

let inc c = inc_by c 1.
let counter_value c = c.c

let set g v = g.g <- v
let add g v = g.g <- g.g +. v
let gauge_value g = g.g

let observe h v =
  h.sum <- h.sum +. v;
  h.count <- h.count + 1;
  let n = Array.length h.upper in
  (* linear scan: bucket counts are small and fixed *)
  let rec find i = if i >= n || v <= h.upper.(i) then i else find (i + 1) in
  let i = find 0 in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1

let histogram_count h = h.count
let histogram_sum h = h.sum

let histogram_buckets h =
  let cumulative = ref 0 in
  let finite =
    Array.to_list
      (Array.mapi
         (fun i upper ->
           cumulative := !cumulative + h.bucket_counts.(i);
           (upper, !cumulative))
         h.upper)
  in
  finite @ [ (infinity, h.count) ]

(* ------------------------------------------------------------------ *)
(* rendering *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_label_value s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n -> (
      incr i;
      match s.[!i] with
      | '\\' -> Buffer.add_char buf '\\'
      | '"' -> Buffer.add_char buf '"'
      | 'n' -> Buffer.add_char buf '\n'
      | c ->
        (* not an escape we emit: keep both characters verbatim *)
        Buffer.add_char buf '\\';
        Buffer.add_char buf c)
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* HELP text has its own (smaller) escape set in the exposition format:
   backslash and newline only — a raw newline would otherwise break the
   line-oriented parse of every scraper *)
let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let prom_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else Jsonu.float_to_string f

let names_in_order t = List.rev t.names

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let fam = Hashtbl.find t.families name in
      if fam.help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" name (escape_help fam.help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name fam.kind);
      List.iter
        (fun s ->
          match s.value with
          | C { c } ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (render_labels s.labels)
                 (prom_float c))
          | G { g } ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (render_labels s.labels)
                 (prom_float g))
          | H h ->
            List.iter
              (fun (upper, cumulative) ->
                let labels = s.labels @ [ ("le", prom_float upper) ] in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name
                     (render_labels labels) cumulative))
              (histogram_buckets h);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" name (render_labels s.labels)
                 (prom_float h.sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" name (render_labels s.labels)
                 h.count))
        fam.series)
    (names_in_order t);
  Buffer.contents buf

let to_json t =
  let open Jsonu in
  let series_json s =
    let labels = Obj (List.map (fun (k, v) -> (k, String v)) s.labels) in
    let value =
      match s.value with
      | C { c } -> [ ("value", Float c) ]
      | G { g } -> [ ("value", Float g) ]
      | H h ->
        [ ("count", Int h.count); ("sum", Float h.sum);
          ("buckets",
           List
             (List.map
                (fun (upper, cumulative) ->
                  Obj
                    [ ("le",
                       if upper = infinity then String "+Inf"
                       else Float upper);
                      ("count", Int cumulative) ])
                (histogram_buckets h))) ]
    in
    Obj (("labels", labels) :: value)
  in
  Obj
    (List.map
       (fun name ->
         let fam = Hashtbl.find t.families name in
         ( name,
           Obj
             [ ("type", String fam.kind); ("help", String fam.help);
               ("series", List (List.map series_json fam.series)) ] ))
       (names_in_order t))

let to_json_string t = Jsonu.to_string (to_json t)
