let write_event oc ev =
  let buf = Buffer.create 128 in
  Jsonu.to_buffer buf (Event.to_json ev);
  Buffer.add_char buf '\n';
  output_string oc (Buffer.contents buf)

let sink_of_channel ?(close_channel = false) oc =
  Sink.make (write_event oc)
    ~flush:(fun () -> flush oc)
    ~close:
      (let closed = ref false in
       fun () ->
         if not !closed then begin
           closed := true;
           flush oc;
           if close_channel then close_out oc
         end)

let sink_of_file path = sink_of_channel ~close_channel:true (open_out path)

let fold_file path ~init ~f =
  let ic = open_in path in
  let lineno = ref 0 in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file -> acc
    | line ->
      incr lineno;
      let trimmed = String.trim line in
      if trimmed = "" then loop acc
      else begin
        let ev =
          try Event.of_json_string trimmed
          with Jsonu.Parse_error msg ->
            close_in_noerr ic;
            raise
              (Jsonu.Parse_error
                 (Printf.sprintf "%s:%d: %s" path !lineno msg))
        in
        loop (f acc ev)
      end
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> loop init)

let read_file path =
  List.rev (fold_file path ~init:[] ~f:(fun acc ev -> ev :: acc))
