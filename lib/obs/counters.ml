type run = {
  policy : string;
  warmup : float;
  duration : float;
  mutable arrivals : int;
  mutable offered : int;
  mutable blocked : int;
  mutable carried_primary : int;
  mutable carried_alternate : int;
  mutable alternate_hops : int;
  mutable departures : int;
  mutable primary_attempts : int;
  mutable primary_admitted : int;
  mutable alternate_rejections : int;
  rejections_by_link : (int, int) Hashtbl.t;
  mutable hop_hist : int array;
  mutable events : int;
  mutable calls : int option;
}

type t = {
  default_warmup : float;
  mutable current : run option;
  mutable completed_rev : run list;
  mutable total_events : int;
}

let new_run ~policy ~warmup ~duration =
  { policy;
    warmup;
    duration;
    arrivals = 0;
    offered = 0;
    blocked = 0;
    carried_primary = 0;
    carried_alternate = 0;
    alternate_hops = 0;
    departures = 0;
    primary_attempts = 0;
    primary_admitted = 0;
    alternate_rejections = 0;
    rejections_by_link = Hashtbl.create 16;
    hop_hist = Array.make 8 0;
    events = 0;
    calls = None }

let create ?(warmup = 0.) () =
  if warmup < 0. then invalid_arg "Counters.create: negative warmup";
  { default_warmup = warmup;
    current = None;
    completed_rev = [];
    total_events = 0 }

let current_run t =
  match t.current with
  | Some r -> r
  | None ->
    let r = new_run ~policy:"" ~warmup:t.default_warmup ~duration:0. in
    t.current <- Some r;
    r

let bump_hop r h =
  let len = Array.length r.hop_hist in
  if h >= len then begin
    let grown = Array.make (Stdlib.max (h + 1) (2 * len)) 0 in
    Array.blit r.hop_hist 0 grown 0 len;
    r.hop_hist <- grown
  end;
  r.hop_hist.(h) <- r.hop_hist.(h) + 1

let emit t ev =
  t.total_events <- t.total_events + 1;
  match ev with
  | Event.Run_start { policy; warmup; duration; _ } ->
    (match t.current with
    | Some r when r.events > 0 -> t.completed_rev <- r :: t.completed_rev
    | _ -> ());
    let r = new_run ~policy ~warmup ~duration in
    r.events <- 1;
    t.current <- Some r
  | ev ->
    let r = current_run t in
    r.events <- r.events + 1;
    let measured time = time >= r.warmup in
    (match ev with
    | Event.Run_start _ -> assert false
    | Event.Arrival { time; _ } ->
      r.arrivals <- r.arrivals + 1;
      if measured time then r.offered <- r.offered + 1
    | Event.Primary_attempt { time; admitted; _ } ->
      if measured time then begin
        r.primary_attempts <- r.primary_attempts + 1;
        if admitted then r.primary_admitted <- r.primary_admitted + 1
      end
    | Event.Alternate_rejected { time; link; _ } ->
      if measured time then begin
        r.alternate_rejections <- r.alternate_rejections + 1;
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt r.rejections_by_link link)
        in
        Hashtbl.replace r.rejections_by_link link (prev + 1)
      end
    | Event.Admit { time; hops; primary; _ } ->
      if measured time then begin
        if primary then r.carried_primary <- r.carried_primary + 1
        else begin
          r.carried_alternate <- r.carried_alternate + 1;
          r.alternate_hops <- r.alternate_hops + hops
        end;
        bump_hop r hops
      end
    | Event.Block { time; _ } ->
      if measured time then begin
        r.blocked <- r.blocked + 1;
        bump_hop r 0
      end
    | Event.Departure { time; _ } ->
      if measured time then r.departures <- r.departures + 1
    | Event.Run_end { calls; _ } -> r.calls <- Some calls)

let sink t = Sink.make (emit t)

let runs t =
  let tail =
    match t.current with Some r when r.events > 0 -> [ r ] | _ -> []
  in
  List.rev_append t.completed_rev tail

let total_events t = t.total_events

(* ------------------------------------------------------------------ *)
(* derived figures *)

let blocking r =
  if r.offered = 0 then 0.
  else float_of_int r.blocked /. float_of_int r.offered

let alternate_fraction r =
  let carried = r.carried_primary + r.carried_alternate in
  if carried = 0 then 0.
  else float_of_int r.carried_alternate /. float_of_int carried

let hop_histogram r =
  (* trim trailing zeros so the shape is independent of growth steps *)
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) r.hop_hist;
  Array.sub r.hop_hist 0 (!last + 1)

let rejections_by_link r =
  Hashtbl.fold (fun link count acc -> (link, count) :: acc) r.rejections_by_link
    []
  |> List.sort compare

let by_policy t =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.policy with
      | Some acc -> acc := r :: !acc
      | None ->
        order := r.policy :: !order;
        Hashtbl.add tbl r.policy (ref [ r ]))
    (runs t);
  List.rev_map
    (fun policy -> (policy, List.rev !(Hashtbl.find tbl policy)))
    !order
