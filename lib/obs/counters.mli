(** The aggregating counter sink.

    Folds an event stream back into the figures the simulator's
    {!Arnet_sim.Stats} accumulates on line — offered/blocked calls,
    primary/alternate carried counts, the hop histogram — plus decision
    detail only the stream has: primary-attempt admission rates and
    per-link trunk-reservation rejection counts.

    Streams may frame several engine runs with [Run_start]/[Run_end]
    records (as [Engine.replicate] emits); each frame accumulates into
    its own {!run}, and every count honours that run's warm-up window,
    so a summarized trace reproduces the run's reported statistics
    exactly.  Events arriving before any [Run_start] go to an implicit
    run using the [?warmup] given at creation. *)

type t

type run = {
  policy : string;  (** "" for the implicit run *)
  warmup : float;
  duration : float;
  mutable arrivals : int;  (** all arrivals, warm-up included *)
  mutable offered : int;  (** arrivals at [time >= warmup] *)
  mutable blocked : int;
  mutable carried_primary : int;
  mutable carried_alternate : int;
  mutable alternate_hops : int;
  mutable departures : int;  (** departures inside the window *)
  mutable primary_attempts : int;
  mutable primary_admitted : int;
  mutable alternate_rejections : int;
  rejections_by_link : (int, int) Hashtbl.t;
  mutable hop_hist : int array;  (** raw; use {!hop_histogram} *)
  mutable events : int;
  mutable calls : int option;  (** from [Run_end], when present *)
}

val create : ?warmup:float -> unit -> t
(** [warmup] (default 0) applies only to events outside any
    [Run_start] frame.
    @raise Invalid_argument when negative. *)

val emit : t -> Event.t -> unit
val sink : t -> Sink.t

val runs : t -> run list
(** Completed frames plus the in-progress one, in stream order. *)

val by_policy : t -> (string * run list) list
(** Runs grouped by policy name, first-seen order preserved — the shape
    of [Engine.replicate]'s result. *)

val total_events : t -> int

(** {1 Derived figures (per run)} *)

val blocking : run -> float
(** [blocked / offered]; 0 when nothing was offered — the same
    convention as [Stats.blocking]. *)

val alternate_fraction : run -> float

val hop_histogram : run -> int array
(** Index [h] counts measured calls carried on [h]-hop paths; index 0
    counts measured blocked calls (the [Instrument.hop_histogram]
    convention).  Trailing zeros trimmed. *)

val rejections_by_link : run -> (int * int) list
(** [(link id, trunk-reservation rejections)] sorted by link id. *)
