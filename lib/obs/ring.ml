type t = {
  buf : Event.t option array;
  mutable next : int;  (* slot for the next write *)
  mutable stored : int;  (* <= capacity *)
  mutable seen : int;  (* total events ever pushed *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; stored = 0; seen = 0 }

let capacity t = Array.length t.buf
let length t = t.stored
let seen t = t.seen
let dropped t = t.seen - t.stored

let push t ev =
  t.buf.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod Array.length t.buf;
  if t.stored < Array.length t.buf then t.stored <- t.stored + 1;
  t.seen <- t.seen + 1

let contents t =
  (* oldest first: when full the oldest lives at [next] *)
  let cap = Array.length t.buf in
  let start = if t.stored < cap then 0 else t.next in
  List.init t.stored (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some ev -> ev
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.stored <- 0;
  t.seen <- 0

let sink t = Sink.make (push t)
