type response = {
  status : int;
  reason : string;
  content_type : string;
  body : string;
}

let text_content_type = "text/plain; charset=utf-8"
let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"
let json_content_type = "application/json"

let response ~status ~reason ~content_type body =
  { status; reason; content_type; body }

let ok ~content_type body = response ~status:200 ~reason:"OK" ~content_type body

let bad_request detail =
  response ~status:400 ~reason:"Bad Request" ~content_type:text_content_type
    ("bad request: " ^ detail ^ "\n")

let not_found path =
  response ~status:404 ~reason:"Not Found" ~content_type:text_content_type
    ("not found: " ^ path ^ "\n")

let method_not_allowed meth =
  response ~status:405 ~reason:"Method Not Allowed"
    ~content_type:text_content_type
    ("method not allowed: " ^ meth ^ " (GET only)\n")

(* every byte a request line may legally contain; control characters
   (telnet negotiation, TLS ClientHello bytes on a plaintext port)
   mean this is not HTTP at all *)
let printable s =
  String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x7f) s

let parse_request_line line =
  if not (printable line) then Error "request line is not printable ASCII"
  else
    match String.split_on_char ' ' line with
    | [ meth; target; version ]
      when meth <> "" && target <> ""
           && String.length version > 5
           && String.sub version 0 5 = "HTTP/" ->
      Ok (meth, target)
    | _ -> Error "expected METHOD TARGET HTTP/VERSION"

(* the path part of a request target: strip ?query and #fragment *)
let path_of_target target =
  let cut c s =
    match String.index_opt s c with Some i -> String.sub s 0 i | None -> s
  in
  cut '#' (cut '?' target)

let handle ~routes line =
  match parse_request_line line with
  | Error detail -> bad_request detail
  | Ok (meth, target) ->
    if meth <> "GET" && meth <> "HEAD" then method_not_allowed meth
    else begin
      let path = path_of_target target in
      match List.assoc_opt path routes with
      | None -> not_found path
      | Some body_fn ->
        let content_type, body = body_fn () in
        let r = ok ~content_type body in
        if meth = "HEAD" then { r with body = "" } else r
    end

let render r =
  (* Content-Length counts the GET body even on HEAD-stripped
     responses we build directly; render what we were given *)
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    r.status r.reason r.content_type (String.length r.body) r.body
