(** The engine-to-metrics bridge: a sink that keeps a {!Metrics.t}
    registry current as simulation events stream through it.

    Maintained series:
    - [arnet_events_total{kind=...}] — every event, by kind
    - [arnet_calls_offered_total], [arnet_calls_blocked_total],
      [arnet_calls_admitted_total{route="primary"|"alternate"}]
    - [arnet_alt_rejected_total{link=...}] — per-link trunk-reservation
      rejections
    - [arnet_link_occupancy{link=...}] — live occupancy gauge,
      maintained from admit/departure link sets
    - [arnet_call_holding_time] — log-bucket histogram
    - [arnet_admitted_hops] — path-length histogram
    - [arnet_events_per_second], [arnet_wall_seconds] — wall-clock
      throughput, refreshed on [flush]/[close]

    Per-link series are cached in hash tables, so the per-event cost is
    O(path length), not O(registered series). *)

type t

val create : Metrics.t -> t
(** Registers the series above into the given registry (names must not
    already be taken by other types). *)

val emit : t -> Event.t -> unit
val sink : t -> Sink.t

val events : t -> int
(** Events seen so far. *)

val registry : t -> Metrics.t
