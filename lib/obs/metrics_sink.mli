(** The engine-to-metrics bridge: a sink that keeps a {!Metrics.t}
    registry current as simulation events stream through it.

    Maintained series:
    - [arnet_events_total{kind=...}] — every event, by kind
    - [arnet_calls_offered_total], [arnet_calls_blocked_total],
      [arnet_calls_admitted_total{route="primary"|"alternate"}]
    - [arnet_alt_rejected_total{link=...}] — per-link trunk-reservation
      rejections
    - [arnet_link_occupancy{link=...}] — live occupancy gauge,
      maintained from admit/departure link sets
    - [arnet_pair_accepted_total{src,dst}],
      [arnet_pair_blocked_total{src,dst}] — per-O-D-pair outcomes
    - [arnet_link_capacity{link=...}], [arnet_link_reserve{link=...}] —
      static/reload-time network shape, set through {!set_network}
    - [arnet_link_failed{link=...}] — 0/1 liveness gauge, set through
      {!set_failed_links}
    - [arnet_failover_total] — calls admitted around a failed primary,
      synced through {!sync_failovers}
    - [arnet_call_holding_time] — log-bucket histogram
    - [arnet_admitted_hops] — path-length histogram
    - [arnet_events_per_second], [arnet_wall_seconds] — wall-clock
      throughput, refreshed on [flush]/[close]

    Per-link series are cached in hash tables, so the per-event cost is
    O(path length), not O(registered series). *)

type t

val create : Metrics.t -> t
(** Registers the series above into the given registry (names must not
    already be taken by other types). *)

val emit : t -> Event.t -> unit
val sink : t -> Sink.t

val set_network : t -> capacities:int array -> reserves:int array -> unit
(** Publish the per-link capacity and protection-level gauges, indexed
    by link id.  Events carry occupancy but not the network shape, so
    the owner (the daemon on scrape, [arn sim] before its snapshot)
    pushes it here whenever levels may have changed. *)

val set_failed_links : t -> link_count:int -> int list -> unit
(** Publish the per-link 0/1 [arnet_link_failed] gauges: every link in
    [0, link_count) reads 0 except the listed failed ids.  Like
    {!set_network}, pushed by the owner whenever liveness may have
    changed (the daemon syncs it per scrape). *)

val sync_failovers : t -> int -> unit
(** Advance [arnet_failover_total] to the given running total (counters
    never move backward; a smaller total is ignored). *)

val events : t -> int
(** Events seen so far. *)

val registry : t -> Metrics.t
