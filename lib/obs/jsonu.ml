type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every finite double; trim the common integral case
   so traces stay readable *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing — recursive descent over the subset we emit (the same
   conventions as lib/analysis/diagnostic.ml, extended with floats,
   booleans and null) *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail reason =
    raise (Parse_error (Printf.sprintf "%s at offset %d" reason !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> fail "non-ASCII \\u escape"
          | None -> fail "bad \\u escape");
          loop ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    (match peek () with
    | Some '.' ->
      is_float := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    if !pos = start then fail "expected number";
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad float"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* out-of-range integer literal: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad integer")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | _ -> fail "unexpected input"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (advance (); Obj [])
    else
      let rec members acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}' in object"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (advance (); List [])
    else
      let rec elements acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements (v :: acc)
        | Some ']' ->
          advance ();
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' in array"
      in
      elements []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member_exn key v =
  match member key v with
  | Some v -> v
  | None -> raise (Parse_error ("missing field " ^ key))

let as_int = function
  | Int i -> i
  | _ -> raise (Parse_error "expected integer")

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected number")

let as_string = function
  | String s -> s
  | _ -> raise (Parse_error "expected string")

let as_bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected boolean")

let as_list = function
  | List items -> items
  | _ -> raise (Parse_error "expected array")
