type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type format = Text | Jsonl

type t = {
  threshold : level;
  format : format;
  chan : out_channel option;  (* None: the null logger, drops everything *)
  clock : unit -> float;
}

let create ?(level = Info) ?(format = Text) ?(clock = Unix.gettimeofday) chan
    =
  { threshold = level; format; chan = Some chan; clock }

let null =
  { threshold = Error; format = Text; chan = None; clock = (fun () -> 0.) }

let enabled t level =
  t.chan <> None && severity level >= severity t.threshold

(* ISO-8601 UTC with millisecond precision: sortable, parseable, and
   unambiguous across the daemon/load-generator pair of logs *)
let timestamp now =
  let tm = Unix.gmtime now in
  let ms = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
    (max 0 (min 999 ms))

let render_text ~ts ~level ~msg fields =
  let b = Buffer.create 96 in
  Buffer.add_string b ts;
  Buffer.add_char b ' ';
  Buffer.add_string b (String.uppercase_ascii (level_to_string level));
  Buffer.add_char b ' ';
  Buffer.add_string b msg;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b
        (match v with
        | Jsonu.String s -> s
        | v -> Jsonu.to_string v))
    fields;
  Buffer.contents b

let render_jsonl ~ts ~level ~msg fields =
  Jsonu.to_string
    (Jsonu.Obj
       (("ts", Jsonu.String ts)
       :: ("level", Jsonu.String (level_to_string level))
       :: ("msg", Jsonu.String msg)
       :: fields))

let log t level ?(fields = []) msg =
  match t.chan with
  | None -> ()
  | Some chan ->
    if severity level >= severity t.threshold then begin
      let ts = timestamp (t.clock ()) in
      let line =
        match t.format with
        | Text -> render_text ~ts ~level ~msg fields
        | Jsonl -> render_jsonl ~ts ~level ~msg fields
      in
      output_string chan line;
      output_char chan '\n';
      (* flushed per line: daemon logs must survive a kill *)
      flush chan
    end

let debug t ?fields msg = log t Debug ?fields msg
let info t ?fields msg = log t Info ?fields msg
let warn t ?fields msg = log t Warn ?fields msg
let error t ?fields msg = log t Error ?fields msg
