type t = {
  name : string;
  started_at : float;
  mutable duration : float option;
  mutable meta : (string * Jsonu.t) list;
}

let now () = Unix.gettimeofday ()

(* no mtime/ptime in the dependency budget: monotonize the wall clock
   instead.  Each clock owns its own high-water mark, so a backwards
   step (NTP slew, VM migration) reads as a zero-length interval rather
   than a negative latency *)
let monotonic () =
  let last = ref (Unix.gettimeofday ()) in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let start name = { name; started_at = now (); duration = None; meta = [] }

let stop t =
  match t.duration with
  | Some d -> d
  | None ->
    let d = now () -. t.started_at in
    t.duration <- Some d;
    d

let elapsed t =
  match t.duration with Some d -> d | None -> now () -. t.started_at

let name t = t.name
let finished t = t.duration <> None

let set_meta t key v = t.meta <- (key, v) :: List.remove_assoc key t.meta

let to_json t =
  Jsonu.Obj
    (("name", Jsonu.String t.name)
    :: ("wall_s", Jsonu.Float (elapsed t))
    :: List.rev t.meta)

(* ------------------------------------------------------------------ *)
(* recorder *)

type recorder = { mutable spans_rev : t list }

let recorder () = { spans_rev = [] }

let record r name f =
  let span = start name in
  Fun.protect
    ~finally:(fun () ->
      ignore (stop span);
      r.spans_rev <- span :: r.spans_rev)
    f

let note r span = r.spans_rev <- span :: r.spans_rev
let spans r = List.rev r.spans_rev

let recorder_to_json r =
  Jsonu.List (List.map to_json (spans r))
