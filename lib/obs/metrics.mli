(** A metrics registry: counters, gauges and fixed-bucket histograms,
    rendered as Prometheus exposition text or JSON.

    Series are identified by metric name plus a sorted label set, the
    Prometheus data model; registering the same (name, labels) twice
    returns the existing series, so call sites need not thread handles
    around.  Updates are plain field mutations — cheap enough to sit on
    the simulator's per-event path. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter :
  t -> ?labels:(string * string) list -> ?help:string -> string -> counter
(** @raise Invalid_argument on an invalid metric/label name, or when
    [name] is already registered with a different type. *)

val gauge :
  t -> ?labels:(string * string) list -> ?help:string -> string -> gauge

val histogram :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  buckets:float array ->
  string ->
  histogram
(** [buckets] are finite upper bounds, strictly increasing; an implicit
    [+Inf] bucket catches the overflow.
    @raise Invalid_argument on bad bounds or when re-registered with
    different buckets. *)

val log_buckets : lo:float -> hi:float -> per_decade:int -> float array
(** Logarithmically spaced bounds covering [\[lo, hi\]] with
    [per_decade] buckets per factor of 10 — the fixed log-scale shape
    used for latency- and holding-time-like quantities.
    @raise Invalid_argument unless [0 < lo < hi] and [per_decade >= 1]. *)

val inc : counter -> unit
val inc_by : counter -> float -> unit
(** @raise Invalid_argument when the increment is negative. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit

val observe : histogram -> float -> unit

(** {1 Reading (tests, JSON export)} *)

val counter_value : counter -> float
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** [(upper bound, cumulative count)] pairs ending with [(infinity,
    total)] — the exposition-format convention. *)

(** {1 Rendering} *)

val escape_label_value : string -> string
(** Exposition-format label-value escaping: [\\] → [\\\\], ["] → [\\"],
    newline → [\\n]. *)

val unescape_label_value : string -> string
(** Inverse of {!escape_label_value}; escape sequences it does not emit
    (and a trailing backslash) pass through verbatim, so
    [unescape_label_value (escape_label_value s) = s] for every [s]. *)

val escape_help : string -> string
(** [# HELP] text escaping — the exposition format's smaller set:
    [\\] → [\\\\] and newline → [\\n] (quotes stay literal). *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers, one
    line per series, histogram [_bucket]/[_sum]/[_count] expansion.
    Label values and help text are escaped per the format.
    Families render in registration order. *)

val to_json : t -> Jsonu.t
val to_json_string : t -> string
