type t =
  | Run_start of {
      policy : string;
      warmup : float;
      duration : float;
      nodes : int;
      links : int;
    }
  | Arrival of { time : float; src : int; dst : int; holding : float }
  | Primary_attempt of {
      time : float;
      src : int;
      dst : int;
      hops : int;
      admitted : bool;
    }
  | Alternate_rejected of {
      time : float;
      src : int;
      dst : int;
      hops : int;
      link : int;
      occupancy : int;
      threshold : int;
    }
  | Admit of {
      time : float;
      src : int;
      dst : int;
      hops : int;
      primary : bool;
      links : int array;
    }
  | Block of { time : float; src : int; dst : int }
  | Departure of { time : float; links : int array }
  | Run_end of { time : float; calls : int }

let kind = function
  | Run_start _ -> "run_start"
  | Arrival _ -> "arrival"
  | Primary_attempt _ -> "primary_attempt"
  | Alternate_rejected _ -> "alternate_rejected"
  | Admit _ -> "admit"
  | Block _ -> "block"
  | Departure _ -> "departure"
  | Run_end _ -> "run_end"

let kinds =
  [ "run_start"; "arrival"; "primary_attempt"; "alternate_rejected";
    "admit"; "block"; "departure"; "run_end" ]

let time = function
  | Run_start _ -> 0.
  | Arrival { time; _ }
  | Primary_attempt { time; _ }
  | Alternate_rejected { time; _ }
  | Admit { time; _ }
  | Block { time; _ }
  | Departure { time; _ }
  | Run_end { time; _ } -> time

(* ------------------------------------------------------------------ *)
(* JSON round trip: one flat object per event, keyed by "ev" *)

let links_json ids = Jsonu.List (Array.to_list (Array.map (fun i -> Jsonu.Int i) ids))

let to_json ev =
  let open Jsonu in
  let fields =
    match ev with
    | Run_start { policy; warmup; duration; nodes; links } ->
      [ ("policy", String policy); ("warmup", Float warmup);
        ("duration", Float duration); ("nodes", Int nodes);
        ("links", Int links) ]
    | Arrival { time; src; dst; holding } ->
      [ ("t", Float time); ("src", Int src); ("dst", Int dst);
        ("holding", Float holding) ]
    | Primary_attempt { time; src; dst; hops; admitted } ->
      [ ("t", Float time); ("src", Int src); ("dst", Int dst);
        ("hops", Int hops); ("admitted", Bool admitted) ]
    | Alternate_rejected { time; src; dst; hops; link; occupancy; threshold }
      ->
      [ ("t", Float time); ("src", Int src); ("dst", Int dst);
        ("hops", Int hops); ("link", Int link); ("occ", Int occupancy);
        ("threshold", Int threshold) ]
    | Admit { time; src; dst; hops; primary; links } ->
      [ ("t", Float time); ("src", Int src); ("dst", Int dst);
        ("hops", Int hops); ("primary", Bool primary);
        ("links", links_json links) ]
    | Block { time; src; dst } ->
      [ ("t", Float time); ("src", Int src); ("dst", Int dst) ]
    | Departure { time; links } ->
      [ ("t", Float time); ("links", links_json links) ]
    | Run_end { time; calls } -> [ ("t", Float time); ("calls", Int calls) ]
  in
  Obj (("ev", String (kind ev)) :: fields)

let to_json_string ev = Jsonu.to_string (to_json ev)

let of_json v =
  let open Jsonu in
  let f key = member_exn key v in
  let links key = Array.of_list (List.map as_int (as_list (f key))) in
  match as_string (f "ev") with
  | "run_start" ->
    Run_start
      {
        policy = as_string (f "policy");
        warmup = as_float (f "warmup");
        duration = as_float (f "duration");
        nodes = as_int (f "nodes");
        links = as_int (f "links");
      }
  | "arrival" ->
    Arrival
      {
        time = as_float (f "t");
        src = as_int (f "src");
        dst = as_int (f "dst");
        holding = as_float (f "holding");
      }
  | "primary_attempt" ->
    Primary_attempt
      {
        time = as_float (f "t");
        src = as_int (f "src");
        dst = as_int (f "dst");
        hops = as_int (f "hops");
        admitted = as_bool (f "admitted");
      }
  | "alternate_rejected" ->
    Alternate_rejected
      {
        time = as_float (f "t");
        src = as_int (f "src");
        dst = as_int (f "dst");
        hops = as_int (f "hops");
        link = as_int (f "link");
        occupancy = as_int (f "occ");
        threshold = as_int (f "threshold");
      }
  | "admit" ->
    Admit
      {
        time = as_float (f "t");
        src = as_int (f "src");
        dst = as_int (f "dst");
        hops = as_int (f "hops");
        primary = as_bool (f "primary");
        links = links "links";
      }
  | "block" ->
    Block
      { time = as_float (f "t"); src = as_int (f "src"); dst = as_int (f "dst") }
  | "departure" -> Departure { time = as_float (f "t"); links = links "links" }
  | "run_end" -> Run_end { time = as_float (f "t"); calls = as_int (f "calls") }
  | k -> raise (Parse_error ("unknown event kind " ^ k))

let of_json_string s = of_json (Jsonu.parse s)

let equal (a : t) (b : t) = a = b

let pp ppf ev = Format.pp_print_string ppf (to_json_string ev)
