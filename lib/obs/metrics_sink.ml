type t = {
  registry : Metrics.t;
  started_at : float;
  mutable events : int;
  by_kind : (string, Metrics.counter) Hashtbl.t;
  occupancy : (int, Metrics.gauge) Hashtbl.t;
  rejected : (int, Metrics.counter) Hashtbl.t;
  capacity : (int, Metrics.gauge) Hashtbl.t;
  reserve : (int, Metrics.gauge) Hashtbl.t;
  pair_accepted : (int * int, Metrics.counter) Hashtbl.t;
  pair_blocked : (int * int, Metrics.counter) Hashtbl.t;
  link_failed : (int, Metrics.gauge) Hashtbl.t;
  failovers : Metrics.counter;
  offered : Metrics.counter;
  blocked : Metrics.counter;
  admitted_primary : Metrics.counter;
  admitted_alternate : Metrics.counter;
  holding : Metrics.histogram;
  hops : Metrics.histogram;
  events_per_second : Metrics.gauge;
  wall_seconds : Metrics.gauge;
}

let create registry =
  { registry;
    started_at = Unix.gettimeofday ();
    events = 0;
    by_kind = Hashtbl.create 8;
    occupancy = Hashtbl.create 64;
    rejected = Hashtbl.create 64;
    capacity = Hashtbl.create 64;
    reserve = Hashtbl.create 64;
    pair_accepted = Hashtbl.create 256;
    pair_blocked = Hashtbl.create 256;
    link_failed = Hashtbl.create 64;
    failovers =
      Metrics.counter registry
        ~help:"Calls admitted around a failed primary path"
        "arnet_failover_total";
    offered =
      Metrics.counter registry ~help:"Calls offered (arrivals)"
        "arnet_calls_offered_total";
    blocked =
      Metrics.counter registry ~help:"Calls lost" "arnet_calls_blocked_total";
    admitted_primary =
      Metrics.counter registry
        ~labels:[ ("route", "primary") ]
        ~help:"Calls admitted by route class" "arnet_calls_admitted_total";
    admitted_alternate =
      Metrics.counter registry
        ~labels:[ ("route", "alternate") ]
        ~help:"Calls admitted by route class" "arnet_calls_admitted_total";
    holding =
      Metrics.histogram registry
        ~buckets:(Metrics.log_buckets ~lo:0.001 ~hi:1000. ~per_decade:1)
        ~help:"Holding time of offered calls (simulated time units)"
        "arnet_call_holding_time";
    hops =
      Metrics.histogram registry
        ~buckets:[| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. |]
        ~help:"Path length of admitted calls (hops)" "arnet_admitted_hops";
    events_per_second =
      Metrics.gauge registry
        ~help:"Observed event throughput over the wall clock"
        "arnet_events_per_second";
    wall_seconds =
      Metrics.gauge registry ~help:"Wall-clock seconds since sink creation"
        "arnet_wall_seconds" }

let kind_counter t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some c -> c
  | None ->
    let c =
      Metrics.counter t.registry
        ~labels:[ ("kind", kind) ]
        ~help:"Simulation events by kind" "arnet_events_total"
    in
    Hashtbl.add t.by_kind kind c;
    c

let link_gauge t link =
  match Hashtbl.find_opt t.occupancy link with
  | Some g -> g
  | None ->
    let g =
      Metrics.gauge t.registry
        ~labels:[ ("link", string_of_int link) ]
        ~help:"Calls in progress on the link" "arnet_link_occupancy"
    in
    Hashtbl.add t.occupancy link g;
    g

let rejected_counter t link =
  match Hashtbl.find_opt t.rejected link with
  | Some c -> c
  | None ->
    let c =
      Metrics.counter t.registry
        ~labels:[ ("link", string_of_int link) ]
        ~help:"Alternate-routed calls refused by trunk reservation"
        "arnet_alt_rejected_total"
    in
    Hashtbl.add t.rejected link c;
    c

(* per-(src,dst) counters, cached like the per-link series so the
   per-event cost stays a hash lookup *)
let pair_counter t table name help (src, dst) =
  match Hashtbl.find_opt table (src, dst) with
  | Some c -> c
  | None ->
    let c =
      Metrics.counter t.registry
        ~labels:[ ("src", string_of_int src); ("dst", string_of_int dst) ]
        ~help name
    in
    Hashtbl.add table (src, dst) c;
    c

let pair_accepted t pair =
  pair_counter t t.pair_accepted "arnet_pair_accepted_total"
    "Calls admitted, by origin-destination pair" pair

let pair_blocked t pair =
  pair_counter t t.pair_blocked "arnet_pair_blocked_total"
    "Calls lost, by origin-destination pair" pair

let network_gauge t table name help link =
  match Hashtbl.find_opt table link with
  | Some g -> g
  | None ->
    let g =
      Metrics.gauge t.registry
        ~labels:[ ("link", string_of_int link) ]
        ~help name
    in
    Hashtbl.add table link g;
    g

let set_network t ~capacities ~reserves =
  Array.iteri
    (fun k c ->
      Metrics.set
        (network_gauge t t.capacity "arnet_link_capacity"
           "Circuits installed on the link" k)
        (float_of_int c))
    capacities;
  Array.iteri
    (fun k r ->
      Metrics.set
        (network_gauge t t.reserve "arnet_link_reserve"
           "Trunk-reservation protection level r^k on the link" k)
        (float_of_int r))
    reserves

let set_failed_links t ~link_count failed =
  for k = 0 to link_count - 1 do
    Metrics.set
      (network_gauge t t.link_failed "arnet_link_failed"
         "1 while the link is failed, else 0" k)
      0.
  done;
  List.iter
    (fun k ->
      Metrics.set
        (network_gauge t t.link_failed "arnet_link_failed"
           "1 while the link is failed, else 0" k)
        1.)
    failed

(* counters only move forward; syncing to an externally held total is
   the shared idiom for state the sink does not observe event-by-event *)
let sync_failovers t total =
  let target = float_of_int total in
  let current = Metrics.counter_value t.failovers in
  if target > current then Metrics.inc_by t.failovers (target -. current)

let refresh_rates t =
  let wall = Unix.gettimeofday () -. t.started_at in
  Metrics.set t.wall_seconds wall;
  Metrics.set t.events_per_second
    (if wall > 0. then float_of_int t.events /. wall else 0.)

let emit t ev =
  t.events <- t.events + 1;
  Metrics.inc (kind_counter t (Event.kind ev));
  match ev with
  | Event.Arrival { holding; _ } ->
    Metrics.inc t.offered;
    Metrics.observe t.holding holding
  | Event.Block { src; dst; _ } ->
    Metrics.inc t.blocked;
    Metrics.inc (pair_blocked t (src, dst))
  | Event.Admit { src; dst; primary; hops; links; _ } ->
    Metrics.inc (if primary then t.admitted_primary else t.admitted_alternate);
    Metrics.inc (pair_accepted t (src, dst));
    Metrics.observe t.hops (float_of_int hops);
    Array.iter (fun k -> Metrics.add (link_gauge t k) 1.) links
  | Event.Departure { links; _ } ->
    Array.iter (fun k -> Metrics.add (link_gauge t k) (-1.)) links
  | Event.Alternate_rejected { link; _ } ->
    Metrics.inc (rejected_counter t link)
  | Event.Run_start _ | Event.Run_end _ | Event.Primary_attempt _ -> ()

let sink t =
  Sink.make (emit t)
    ~flush:(fun () -> refresh_rates t)
    ~close:(fun () -> refresh_rates t)

let events t = t.events
let registry t = t.registry
