(** A minimal JSON value type with a round-trippable printer/parser.

    The observability layer emits and re-reads its own JSONL traces and
    JSON metric dumps; the container ships no JSON library, so we keep a
    dependency-free reader for exactly the values we print (the same
    convention as [Arnet_analysis.Diagnostic], extended with floats,
    booleans and null).  Floats print with enough digits ([%.17g]) to
    round-trip bit-exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val float_to_string : float -> string
(** The printer's float convention, exposed for non-[t] emitters (the
    Prometheus renderer). *)

(** Accessors; all but {!member} raise {!Parse_error} on a shape
    mismatch, so readers surface one uniform error type. *)

val member : string -> t -> t option
val member_exn : string -> t -> t
val as_int : t -> int
val as_float : t -> float
(** Accepts both [Int] and [Float] (JSON does not distinguish). *)

val as_string : t -> string
val as_bool : t -> bool
val as_list : t -> t list
