(* CI perf smoke: a fig3-sized check that the hot path stays both
   correct and allocation-free.

   1. Runs the quick-config quadrangle sweep sequentially and asserts
      the frozen golden blocking means (the same table tier-1 pins in
      test_experiments.ml) still hold bit-identically.
   2. Replays a warm trace through the controlled scheme twice and
      measures minor-heap words allocated per call on the second run.
      The steady-state budget is zero (admit + departure +
      blocked-primary probe); the ceiling below is generous so the job
      catches accidental re-boxing — a float crossing a function
      boundary costs >= 2 words/call — and never micro-noise.

   Exits nonzero on any failure, so CI blocks the regression. *)

open Arnet_experiments

let failed = ref false

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("perf_smoke: FAIL " ^ s);
      failed := true)
    fmt

let golden_check () =
  let config = { Config.quick with Config.domains = 1 } in
  let points = Quadrangle.run ~loads:[ 80.; 90.; 95. ] ~config () in
  let expected =
    [ ( 80.,
        [ ("single-path", 0.0035970687657719772);
          ("uncontrolled", 6.1275743528842823e-05);
          ("controlled", 0.00018421195274935021) ] );
      ( 90.,
        [ ("single-path", 0.027233159266010543);
          ("uncontrolled", 0.077561753680641332);
          ("controlled", 0.022825224504288543) ] );
      ( 95.,
        [ ("single-path", 0.049777383949227538);
          ("uncontrolled", 0.15722272030961867);
          ("controlled", 0.048939295052836028) ] ) ]
  in
  if List.length points <> List.length expected then
    fail "expected %d sweep points, got %d" (List.length expected)
      (List.length points)
  else
    List.iter2
      (fun p (x, golden) ->
        if p.Sweep.x <> x then fail "sweep coordinate %g <> %g" p.Sweep.x x;
        if List.map fst golden <> List.map fst p.Sweep.schemes then
          fail "scheme order changed at %g E" x
        else
          List.iter2
            (fun (name, mean) (_, s) ->
              let got = s.Arnet_sim.Stats.mean in
              if Float.abs (got -. mean) > 1e-12 then
                fail "golden blocking for %s at %g E: expected %.17g got %.17g"
                  name x mean got)
            golden p.Sweep.schemes)
      points expected;
  if not !failed then print_endline "perf_smoke: goldens OK (9 frozen means)"

(* generous: steady state measures ~0.01 words/call; one re-boxed float
   in the per-call path costs >= 2 *)
let words_per_call_ceiling = 1.0

let allocation_check () =
  let g = Arnet_topology.Builders.full_mesh ~nodes:4 ~capacity:100 in
  let routes = Arnet_paths.Route_table.build g in
  let matrix = Arnet_traffic.Matrix.uniform ~nodes:4 ~demand:90. in
  let rng = Arnet_sim.Rng.substream (Arnet_sim.Rng.create ~seed:42) "trace" in
  let trace = Arnet_sim.Trace.generate ~rng ~duration:50. matrix in
  let policy = Arnet_core.Scheme.controlled_auto ~matrix routes in
  let run () =
    ignore (Arnet_sim.Engine.run ~warmup:5. ~graph:g ~policy trace
            : Arnet_sim.Stats.t)
  in
  (* first run warms the trace, the compiled plans and the queue *)
  run ();
  let before = Gc.minor_words () in
  run ();
  let words = Gc.minor_words () -. before in
  let calls = Arnet_sim.Trace.call_count trace in
  let per_call = words /. float_of_int calls in
  Printf.printf
    "perf_smoke: controlled replay %d calls, %.0f minor words, %.4f words/call\n"
    calls words per_call;
  if per_call > words_per_call_ceiling then
    fail "controlled hot path allocates %.4f minor words/call (ceiling %.1f)"
      per_call words_per_call_ceiling

let () =
  golden_check ();
  allocation_check ();
  if !failed then exit 1;
  print_endline "perf_smoke: PASS"
