(* Reproduction harness: one section per table/figure of the paper, plus
   Bechamel micro-benchmarks of the computational kernels.

   Usage: main.exe [section ...]
     sections: fig1 fig2 fig3 fig4 fig3_d1 fig5 table1 fig6 fig7 fig6_d1
               exp_h6 exp_failures exp_fairness exp_minloss exp_robustness
               exp_ablation exp_overload ext_cellular ext_multirate
               ext_bistability ext_signalling ext_random_mesh ext_analytic
               ext_optimality ext_dimensioning ext_failure serve storm
               serve_scaling compile perf
     default: all of them.  fig3_d1/fig6_d1 rerun the headline sweeps
     pinned to a single domain so their calls/s stays comparable with
     BENCH_2.json whatever ARNET_DOMAINS says; serve/storm pin the
     daemon to one domain for the same reason (serve_scaling owns the
     domain axis).
   Environment: ARNET_QUICK=1 for a fast pass (3 seeds, short window),
   ARNET_SEEDS=n to override the seed count, ARNET_DOMAINS=n to shard
   replication runs across n OCaml domains (bit-identical results),
   ARNET_COMPILE_NODES=a,b,c for the compile-sweep mesh sizes (default
   100,500,1000), ARNET_BENCH_JSON=path for the run record (default
   BENCH_10.json) — compare records across versions with
   `arn bench diff`. *)

open Arnet_experiments

let ppf = Format.std_formatter

let config = lazy (Config.of_env ())

let log10_or_floor b = if b <= 0. then -6. else Stdlib.max (-6.) (log10 b)

(* Figures 3/4 and 6/7 are the same data on linear and log axes; compute
   each sweep once. *)
let quadrangle_points = lazy (Quadrangle.run ~config:(Lazy.force config) ())

let internet_points =
  lazy (Internet.run ~h:11 ~config:(Lazy.force config) ())

(* the headline sweeps again, pinned to one domain: BENCH_3/BENCH_4 ran
   with domains=4 on a 1-core container, which made their totals
   incomparable with BENCH_2's sequential numbers *)
let config_d1 = lazy { (Lazy.force config) with Config.domains = 1 }

let print_log_view points =
  Report.note ppf "log10 of blocking (emphasizing low-load behaviour):";
  let columns =
    match points with
    | [] -> []
    | p :: _ -> List.map fst p.Sweep.schemes
  in
  Report.series_header ppf ~columns:("load" :: "erlang-bound" :: columns);
  List.iter
    (fun p ->
      Report.series_row ppf ~x:p.Sweep.x
        (log10_or_floor p.Sweep.bound
        :: List.map
             (fun (_, s) -> log10_or_floor s.Arnet_sim.Stats.mean)
             p.Sweep.schemes))
    points

let fig1 () =
  Report.section ppf ~id:"fig1"
    ~title:"Markov chain of a link under state protection";
  Fig1.print ppf (Fig1.run ());
  Report.paper_vs_measured ppf ~what:"Theorem 1 on the depicted chain"
    ~paper:"L bounded for any overflow" ~measured:"bound holds (see above)"

let fig2 () =
  Report.section ppf ~id:"fig2"
    ~title:"Protection level r vs primary load (C=100, H=2/6/120)";
  let curves = Fig2.run () in
  Fig2.print ppf curves;
  let r_at h load =
    List.assoc load (List.assoc h curves)
  in
  Report.paper_vs_measured ppf ~what:"r at 50 Erlangs, H in [1000,2000]"
    ~paper:"r in [10,20]"
    ~measured:
      (Printf.sprintf "r(H=1000)=%d r(H=2000)=%d"
         (Arnet_core.Protection.level ~offered:50. ~capacity:100 ~h:1000)
         (Arnet_core.Protection.level ~offered:50. ~capacity:100 ~h:2000));
  Report.paper_vs_measured ppf ~what:"containment of r as H grows (load 80)"
    ~paper:"increase is contained"
    ~measured:
      (Printf.sprintf "r: H=2 -> %d, H=6 -> %d, H=120 -> %d" (r_at 2 80.)
         (r_at 6 80.) (r_at 120 80.))

let fig3 () =
  Report.section ppf ~id:"fig3"
    ~title:"Blocking for a fully-connected quadrangle (linear axes)";
  Report.note ppf (Config.describe (Lazy.force config));
  let points = Lazy.force quadrangle_points in
  Quadrangle.print ppf points;
  let at x name =
    Sweep.scheme_mean
      (List.find (fun p -> p.Sweep.x = x) points)
      name
  in
  Report.paper_vs_measured ppf ~what:"uncontrolled below 85 E"
    ~paper:"performs well"
    ~measured:(Printf.sprintf "blocking %s at 80 E" (Report.pct (at 80. "uncontrolled")));
  Report.paper_vs_measured ppf ~what:"uncontrolled beyond 85-90 E"
    ~paper:"degrades badly"
    ~measured:
      (Printf.sprintf "%s at 95 E vs single-path %s"
         (Report.pct (at 95. "uncontrolled"))
         (Report.pct (at 95. "single-path")));
  Report.paper_vs_measured ppf ~what:"controlled in 85-95 E"
    ~paper:"better than either"
    ~measured:
      (Printf.sprintf "at 90 E: ctl %s vs unc %s vs sp %s"
         (Report.pct (at 90. "controlled"))
         (Report.pct (at 90. "uncontrolled"))
         (Report.pct (at 90. "single-path")))

let fig4 () =
  Report.section ppf ~id:"fig4"
    ~title:"Blocking for a fully-connected quadrangle (log axes)";
  print_log_view (Lazy.force quadrangle_points)

let fig3_d1 () =
  Report.section ppf ~id:"fig3_d1"
    ~title:"Quadrangle sweep, single-domain rerun (comparability baseline)";
  Report.note ppf (Config.describe (Lazy.force config_d1));
  Quadrangle.print ppf (Quadrangle.run ~config:(Lazy.force config_d1) ())

let fig6_d1 () =
  Report.section ppf ~id:"fig6_d1"
    ~title:"Internet sweep, single-domain rerun (comparability baseline)";
  Report.note ppf (Config.describe (Lazy.force config_d1));
  Internet.print ppf (Internet.run ~h:11 ~config:(Lazy.force config_d1) ())

let fig5 () =
  Report.section ppf ~id:"fig5" ~title:"The NSFNet T3 backbone model";
  let g = Arnet_topology.Nsfnet.graph () in
  Format.fprintf ppf "%a@." Arnet_topology.Graph.pp g;
  let routes = Arnet_paths.Route_table.build g in
  let mn = ref 0 and mx = ref 0 in
  let avg = Arnet_paths.Route_table.alternate_count_stats routes ~min:mn ~max:mx in
  Report.paper_vs_measured ppf ~what:"alternate paths per pair (H=11)"
    ~paper:"avg ~9, min 5, max 15"
    ~measured:(Printf.sprintf "avg %.1f, min %d, max %d" avg !mn !mx)

let table1 () =
  Report.section ppf ~id:"table1"
    ~title:"NSFNet capacities, primary loads, protection levels (H=6, H=11)";
  Internet.print_table1 ppf (Internet.table1 ())

let fig6 () =
  Report.section ppf ~id:"fig6"
    ~title:"Internet model, unlimited alternate path lengths (linear axes)";
  Report.note ppf (Config.describe (Lazy.force config));
  Report.note ppf "load-scale 1.0 is the paper's nominal Load=10";
  let points = Lazy.force internet_points in
  Internet.print ppf points;
  let at x name =
    Sweep.scheme_mean (List.find (fun p -> p.Sweep.x = x) points) name
  in
  Report.paper_vs_measured ppf ~what:"single-path at moderate load"
    ~paper:"poor vs alternate routing"
    ~measured:
      (Printf.sprintf "at 0.7x: sp %s vs unc %s"
         (Report.pct (at 0.7 "single-path"))
         (Report.pct (at 0.7 "uncontrolled")));
  Report.paper_vs_measured ppf ~what:"uncontrolled above nominal"
    ~paper:"worse than single-path"
    ~measured:
      (Printf.sprintf "at 1.4x: unc %s vs sp %s"
         (Report.pct (at 1.4 "uncontrolled"))
         (Report.pct (at 1.4 "single-path")));
  Report.paper_vs_measured ppf ~what:"controlled vs single-path (guarantee)"
    ~paper:"never worse"
    ~measured:
      (Printf.sprintf "at 1.4x: ctl %s vs sp %s"
         (Report.pct (at 1.4 "controlled"))
         (Report.pct (at 1.4 "single-path")));
  Report.paper_vs_measured ppf ~what:"Ott-Krishnan on the sparse mesh"
    ~paper:"performance is poor"
    ~measured:
      (Printf.sprintf "at 1.2x: ok %s vs ctl %s"
         (Report.pct (at 1.2 "ott-krishnan"))
         (Report.pct (at 1.2 "controlled")))

let fig7 () =
  Report.section ppf ~id:"fig7"
    ~title:"Internet model, unlimited alternate path lengths (log axes)";
  print_log_view (Lazy.force internet_points)

let exp_h6 () =
  Report.section ppf ~id:"exp_h6"
    ~title:"Internet model with alternate paths limited to H=6";
  let points = Internet.run ~h:6 ~with_ott_krishnan:false ~config:(Lazy.force config) () in
  Internet.print ppf points;
  let g = Arnet_topology.Nsfnet.graph () in
  let rt6 = Arnet_paths.Route_table.build ~h:6 g in
  let mn = ref 0 and mx = ref 0 in
  let avg = Arnet_paths.Route_table.alternate_count_stats rt6 ~min:mn ~max:mx in
  Report.paper_vs_measured ppf ~what:"alternate paths per pair (H=6)"
    ~paper:"avg ~7, min 5, max 13 (convention differs; see EXPERIMENTS.md)"
    ~measured:(Printf.sprintf "avg %.1f, min %d, max %d" avg !mn !mx);
  Report.paper_vs_measured ppf ~what:"controlled at H=6 vs H=11"
    ~paper:"small improvement from smaller r"
    ~measured:"compare the controlled column with fig6"

let exp_failures () =
  Report.section ppf ~id:"exp_failures"
    ~title:"Link failures (Section 4.2.2)";
  let scales = [ 0.8; 1.0; 1.2 ] in
  let run_with links label =
    Report.note ppf label;
    let points =
      Internet.run ~failed_links:links ~scales ~config:(Lazy.force config) ()
    in
    Internet.print ppf points
  in
  run_with [ (2, 3); (3, 2) ] "links 2<->3 disabled:";
  run_with [ (7, 9); (9, 7) ] "links 7<->9 disabled:";
  Report.paper_vs_measured ppf ~what:"relative position of the curves"
    ~paper:"maintained under failures"
    ~measured:"see both sweeps above (blocking higher, ordering kept)"

let exp_fairness () =
  Report.section ppf ~id:"exp_fairness"
    ~title:"Blocking skew across O-D pairs (H=6, nominal load)";
  let rows = Internet.fairness ~config:(Lazy.force config) () in
  Internet.print_fairness ppf rows;
  Report.paper_vs_measured ppf ~what:"skewness ordering"
    ~paper:"single-path most skewed, uncontrolled least"
    ~measured:"see cv column above"

let exp_minloss () =
  Report.section ppf ~id:"exp_minloss"
    ~title:"Primary paths chosen to minimize link loss (Section 4.2.2)";
  Minloss.print ppf (Minloss.run ~config:(Lazy.force config) ())

let exp_robustness () =
  Report.section ppf ~id:"exp_robustness"
    ~title:"Robustness to load misestimation + the adaptive variant";
  let mis = Robustness.misestimation ~config:(Lazy.force config) () in
  Report.note ppf
    "controlled scheme at 1.2x nominal, protection levels computed from \
     Lambda scaled by the factor:";
  Robustness.print_misestimation ppf mis;
  Report.paper_vs_measured ppf ~what:"sensitivity to estimation error"
    ~paper:"state protection is robust (Key [21])"
    ~measured:"blocking nearly flat across 0.5x-2.0x estimates";
  Report.note ppf "distributed estimation (no a-priori matrix), nominal load:";
  Robustness.print_adaptive ppf
    (Robustness.adaptive ~config:(Lazy.force config) ())

let exp_ablation () =
  Report.section ppf ~id:"exp_ablation"
    ~title:"Ablations: H, per-link H^k, global-state routing, O-K variants";
  Report.note ppf "controlled blocking vs the design parameter H:";
  Ablation.print_h_sweep ppf (Ablation.h_sweep ~config:(Lazy.force config) ());
  Report.note ppf "scheme variants on one sweep:";
  Ablation.print_variants ppf
    (Ablation.variants ~config:(Lazy.force config) ())

let ext_cellular () =
  Report.section ppf ~id:"ext_cellular"
    ~title:"Channel borrowing in cellular telephony (Section 3.2, H=3)";
  let points = Cellular_exp.run ~config:(Lazy.force config) () in
  Cellular_exp.print ppf points;
  Report.paper_vs_measured ppf
    ~what:"controlled borrowing vs no borrowing"
    ~paper:"guaranteed improvement, near optimal for C~50"
    ~measured:"controlled column <= no-borrowing column at every load"

let exp_overload () =
  Report.section ppf ~id:"exp_overload"
    ~title:"Focused overload (Section 1's motivating scenario)";
  let r = Overload_exp.run ~config:(Lazy.force config) () in
  Overload_exp.print ppf r;
  let during name = List.assoc name r.Overload_exp.during_surge in
  Report.paper_vs_measured ppf ~what:"behaviour under extraordinary load"
    ~paper:"uncontrolled alternate routing avalanches; control contains it"
    ~measured:
      (Printf.sprintf "surge blocking: unc %s, ctl %s, sp %s"
         (Report.pct (during "uncontrolled"))
         (Report.pct (during "controlled"))
         (Report.pct (during "single-path")))

let ext_multirate () =
  Report.section ppf ~id:"ext_multirate"
    ~title:"Multi-rate calls (Section 1's future work, bandwidth-unit \
            protection)";
  let kr = Multirate_exp.kaufman_roberts_check () in
  let points = Multirate_exp.run ~config:(Lazy.force config) () in
  Multirate_exp.print ppf (kr, points);
  Report.paper_vs_measured ppf
    ~what:"controlled vs single-path, bandwidth blocking"
    ~paper:"(extension) guarantee expected to carry over"
    ~measured:"mr-controlled column <= mr-single-path at every load"

let ext_dimensioning () =
  Report.section ppf ~id:"ext_dimensioning"
    ~title:"Capacity dimensioning: transmission saved by the scheme";
  let r = Dimensioning.run ~config:(Lazy.force config) () in
  Dimensioning.print ppf r;
  Report.paper_vs_measured ppf ~what:"network engineering benefit"
    ~paper:"'less sensitivity ... to network engineering' (Sec. 5)"
    ~measured:
      (Printf.sprintf "%.0f%% less capacity for the same 1%% grade of service"
         (100. *. r.Dimensioning.savings))

let ext_optimality () =
  Report.section ppf ~id:"ext_optimality"
    ~title:"Exact MDP analysis: distance to the optimal policy (triangle)";
  let rows = Optimality_exp.run ~config:(Lazy.force config) () in
  Optimality_exp.print ppf rows;
  Report.paper_vs_measured ppf ~what:"single-path near-optimal at high load"
    ~paper:"'in most typical cases, single-path routing is near-optimal \
            under suitably high loads'"
    ~measured:"single-path column converges to the optimal column";
  Report.paper_vs_measured ppf ~what:"simulator calibration"
    ~paper:"(internal check)"
    ~measured:"ctl-simulated tracks the exact controlled column"

let ext_analytic () =
  Report.section ppf ~id:"ext_analytic"
    ~title:"Fixed-point approximation of the controlled scheme vs simulation";
  let routes, nominal = Internet.nominal () in
  let points = Lazy.force internet_points in
  Report.series_header ppf
    ~columns:
      [ "load-scale"; "sim-ctl"; "approx-ctl"; "sim-unc"; "approx-unc" ];
  List.iter
    (fun p ->
      let scale = p.Sweep.x in
      let matrix = Arnet_traffic.Matrix.scale nominal scale in
      let reserves =
        Arnet_core.Protection.levels routes matrix
          ~h:(Arnet_paths.Route_table.h routes)
      in
      let zero = Array.make (Array.length reserves) 0 in
      let ctl = Arnet_core.Approximation.solve ~routes ~reserves matrix in
      let unc = Arnet_core.Approximation.solve ~routes ~reserves:zero matrix in
      Report.series_row ppf ~x:scale
        [ Sweep.scheme_mean p "controlled";
          ctl.Arnet_core.Approximation.network_blocking;
          Sweep.scheme_mean p "uncontrolled";
          unc.Arnet_core.Approximation.network_blocking ])
    points;
  Report.paper_vs_measured ppf ~what:"controlled operating point"
    ~paper:"(extension) no analytic model given"
    ~measured:"fixed point tracks simulation within ~1pp near nominal"

let ext_random_mesh () =
  Report.section ppf ~id:"ext_random_mesh"
    ~title:"Generalization: the guarantee on random Waxman meshes";
  let rows = Random_mesh.run ~config:(Lazy.force config) () in
  Random_mesh.print ppf rows;
  let violations =
    List.length (List.filter (fun r -> not r.Random_mesh.guarantee_ok) rows)
  in
  Report.paper_vs_measured ppf
    ~what:"controlled <= single-path on general meshes"
    ~paper:"guaranteed under Poisson assumptions"
    ~measured:
      (Printf.sprintf "%d/%d sampled overloaded topologies satisfy it"
         (List.length rows - violations)
         (List.length rows))

let ext_signalling () =
  Report.section ppf ~id:"ext_signalling"
    ~title:"Packet-level call set-up: check forward, book backward";
  let points = Signalling_exp.run ~config:(Lazy.force config) () in
  Signalling_exp.print ppf points;
  Report.paper_vs_measured ppf ~what:"signalling assumed instantaneous"
    ~paper:"footnote 2: set-up bandwidth negligible"
    ~measured:
      "zero-latency rows match the atomic engine; blocking and glare \
       grow smoothly with per-hop delay"

let ext_bistability () =
  Report.section ppf ~id:"ext_bistability"
    ~title:"Bistability and the avalanche (the Section-1 phenomenon)";
  let r = Bistability_exp.run ~config:(Lazy.force config) () in
  Bistability_exp.print ppf r;
  Report.paper_vs_measured ppf ~what:"uncontrolled alternate routing"
    ~paper:"two operating regimes beyond a critical load [1, 10, 25]"
    ~measured:"free-cold vs free-hot columns split on the bistable band";
  Report.paper_vs_measured ppf ~what:"with state protection"
    ~paper:"high-blocking regime tamed"
    ~measured:"prot-cold = prot-hot everywhere; ignition run stays low"

let ext_failure () =
  Report.section ppf ~id:"ext_failure"
    ~title:
      "Failure-rate sweep: Theorem-1 reservation vs Suurballe protection \
       under link churn";
  let r = Failure_exp.run ~config:(Lazy.force config) () in
  Failure_exp.print ppf r;
  match List.rev r with
  | [] -> ()
  | worst :: _ ->
    let cell name =
      List.find (fun c -> c.Failure_exp.scheme = name) worst.Failure_exp.cells
    in
    Report.paper_vs_measured ppf ~what:"trunk reservation under churn"
      ~paper:"(extension) the Theorem-1 guarantee should survive failures"
      ~measured:
        (Printf.sprintf "at rate %g: ctl %s vs unc %s blocking"
           worst.Failure_exp.rate
           (Report.pct (cell "controlled").Failure_exp.blocking.Arnet_sim.Stats.mean)
           (Report.pct (cell "uncontrolled").Failure_exp.blocking.Arnet_sim.Stats.mean));
    Report.paper_vs_measured ppf ~what:"link-disjoint protection paths"
      ~paper:"(extension) disjoint alternates dodge the failed primary"
      ~measured:
        (Printf.sprintf
           "at rate %g: %.0f drops and %.0f failovers per run (protected) \
            vs %.0f and %.0f (controlled)"
           worst.Failure_exp.rate (cell "protected").Failure_exp.dropped
           (cell "protected").Failure_exp.failovers
           (cell "controlled").Failure_exp.dropped
           (cell "controlled").Failure_exp.failovers)

(* ------------------------------------------------------------------ *)
(* the admission-control daemon, measured over its own wire *)

(* stashed by the serve section for the machine-readable run record *)
let serve_result : Arnet_service.Loadgen.result option ref = ref None

let serve () =
  Report.section ppf ~id:"serve"
    ~title:"arnet_service daemon: wire requests/sec over a Unix socket";
  let module Service = Arnet_service in
  let calls =
    match Option.bind (Sys.getenv_opt "ARNET_SERVE_CALLS") int_of_string_opt with
    | Some n when n >= 1 -> n
    | _ -> 20_000
  in
  let g = Arnet_topology.Builders.full_mesh ~nodes:4 ~capacity:20 in
  let matrix =
    Arnet_traffic.Matrix.uniform
      ~nodes:(Arnet_topology.Graph.node_count g)
      ~demand:15.
  in
  let addr =
    Service.Server.Unix_sock
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "arnet-bench-%d.sock" (Unix.getpid ())))
  in
  let state = Service.State.create ~matrix g in
  let server = Thread.create (fun () -> Service.Server.serve ~domains:1 ~state addr) () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (* drain whether or not the load ran: the daemon exits once
           every admitted call is gone, and loadgen tears its own down *)
        (try
           let ic, oc = Service.Server.connect ~retry_for:5. addr in
           ignore (Service.Server.request ic oc Service.Wire.Drain);
           close_out_noerr oc;
           ignore ic
         with _ -> ());
        Thread.join server)
      (fun () ->
        Service.Loadgen.run ~retry_for:5. ~seed:42 ~calls ~matrix ~addr ())
  in
  serve_result := Some result;
  Format.fprintf ppf "%a@." Service.Loadgen.print result;
  Report.paper_vs_measured ppf ~what:"daemon vs batch simulator decisions"
    ~paper:"(extension) same two-tier rule, call-by-call"
    ~measured:
      (Printf.sprintf "%d/%d blocked over the wire, %.0f req/s"
         result.Service.Loadgen.blocked result.Service.Loadgen.calls
         (Service.Loadgen.requests_per_second result))

(* the daemon again, now riding out a scripted failure storm while the
   same Poisson load plays against it: the availability record for
   cross-version comparison *)
let storm_result :
    (Arnet_service.Loadgen.result * Arnet_service.Wire.stats * int) option ref =
  ref None

let storm () =
  Report.section ppf ~id:"storm"
    ~title:"arnet_service daemon availability under a scripted failure storm";
  let module Service = Arnet_service in
  let calls =
    match Option.bind (Sys.getenv_opt "ARNET_STORM_CALLS") int_of_string_opt with
    | Some n when n >= 1 -> n
    | _ -> 20_000
  in
  let g = Arnet_topology.Builders.full_mesh ~nodes:4 ~capacity:20 in
  let matrix =
    Arnet_traffic.Matrix.uniform
      ~nodes:(Arnet_topology.Graph.node_count g)
      ~demand:15.
  in
  (* the load spans about calls/total virtual time units; draw the storm
     over 80% of that so failures (and most repairs) land while SETUPs
     are still advancing the daemon's virtual clock *)
  let span = float_of_int calls /. Arnet_traffic.Matrix.total matrix in
  let script =
    Arnet_failure.Model.independent
      ~rng:(Arnet_sim.Rng.substream (Arnet_sim.Rng.create ~seed:42) "storm")
      ~duration:(0.8 *. span) ~mtbf:span ~mttr:(span /. 25.) g
  in
  Format.fprintf ppf "failure script: %d events over %.1f virtual tu@."
    (Arnet_failure.Script.length script) (0.8 *. span);
  let addr =
    Service.Server.Unix_sock
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "arnet-storm-%d.sock" (Unix.getpid ())))
  in
  let state = Service.State.create ~matrix ~failure_script:script g in
  let server = Thread.create (fun () -> Service.Server.serve ~domains:1 ~state addr) () in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try
           let ic, oc = Service.Server.connect ~retry_for:5. addr in
           ignore (Service.Server.request ic oc Service.Wire.Drain);
           close_out_noerr oc;
           ignore ic
         with _ -> ());
        Thread.join server)
      (fun () ->
        Service.Loadgen.run ~retry_for:5. ~seed:42 ~calls ~matrix ~addr ())
  in
  (* the server thread is joined: the drained state is safe to read *)
  let stats = Service.State.stats state in
  storm_result := Some (result, stats, Arnet_failure.Script.length script);
  Format.fprintf ppf "%a@." Service.Loadgen.print result;
  Format.fprintf ppf
    "storm      dropped %d in-flight, %d failovers, %d links still down@."
    stats.Service.Wire.dropped stats.Service.Wire.failovers
    (List.length stats.Service.Wire.failed);
  Report.paper_vs_measured ppf ~what:"daemon availability under the storm"
    ~paper:"(extension) alternates should carry calls around the cuts"
    ~measured:
      (Printf.sprintf "%.1f%% of %d calls accepted, %d rerouted past a cut"
         (100.
         *. float_of_int result.Service.Loadgen.accepted
         /. float_of_int result.Service.Loadgen.calls)
         result.Service.Loadgen.calls stats.Service.Wire.failovers)

(* the service plane again, across the two axes this daemon can scale:
   batched binary framing (syscalls amortized per frame) and domain
   sharding (reads/parses/writes in parallel, decisions still one
   total order).  The batch-32 2x-over-line floor is asserted on every
   run; domain speedup only when the machine has more than one core *)

type scaling_row = {
  sc_domains : int;
  sc_line_rps : float;
  sc_binary_rps : float;  (* binary framing, batch = 32 *)
}

let scaling_rows : scaling_row list ref = ref []
let scaling_batches : (int * float) list ref = ref []
let scaling_speedup : float option ref = ref None

let serve_scaling () =
  Report.section ppf ~id:"serve_scaling"
    ~title:
      "arnet_service scaling: binary batching and domain sharding \
       (req/s over a Unix socket)";
  let module Service = Arnet_service in
  let calls =
    match Option.bind (Sys.getenv_opt "ARNET_SERVE_CALLS") int_of_string_opt with
    | Some n when n >= 1 -> n
    | _ -> 20_000
  in
  let g = Arnet_topology.Builders.full_mesh ~nodes:4 ~capacity:20 in
  let matrix =
    Arnet_traffic.Matrix.uniform
      ~nodes:(Arnet_topology.Graph.node_count g)
      ~demand:15.
  in
  let counter = ref 0 in
  let measure ~domains ~connections ~binary ~batch =
    incr counter;
    let addr =
      Service.Server.Unix_sock
        (Filename.concat (Filename.get_temp_dir_name ())
           (Printf.sprintf "arnet-scale-%d-%d.sock" (Unix.getpid ()) !counter))
    in
    let state = Service.State.create ~matrix g in
    let server =
      Thread.create (fun () -> Service.Server.serve ~domains ~state addr) ()
    in
    let result =
      Fun.protect
        ~finally:(fun () ->
          (try
             let ic, oc = Service.Server.connect ~retry_for:5. addr in
             ignore (Service.Server.request ic oc Service.Wire.Drain);
             close_out_noerr oc;
             ignore ic
           with _ -> ());
          Thread.join server)
        (fun () ->
          Service.Loadgen.run ~connections ~retry_for:5. ~binary ~batch
            ~seed:42 ~calls ~matrix ~addr ())
    in
    Service.Loadgen.requests_per_second result
  in
  (* axis 1: batch depth, one connection, one domain — pure framing and
     pipelining gain over the same decision core *)
  let line_d1 = measure ~domains:1 ~connections:1 ~binary:false ~batch:1 in
  Format.fprintf ppf "  line protocol, 1 conn, 1 domain: %10.0f req/s@."
    line_d1;
  Format.fprintf ppf "  %8s %12s %9s@." "batch" "req/s" "vs line";
  scaling_batches :=
    List.map
      (fun batch ->
        let rps = measure ~domains:1 ~connections:1 ~binary:true ~batch in
        Format.fprintf ppf "  %8d %12.0f %8.1fx@." batch rps
          (rps /. Float.max 1e-9 line_d1);
        (batch, rps))
      [ 1; 8; 32; 128 ];
  let binary_d1 =
    match List.assoc_opt 32 !scaling_batches with
    | Some rps -> rps
    | None -> assert false
  in
  let speedup = binary_d1 /. Float.max 1e-9 line_d1 in
  scaling_speedup := Some speedup;
  (* the headline guarantee: a batch of 32 amortizes enough syscall and
     parse work to at least double single-connection throughput *)
  if speedup < 2.0 then
    failwith
      (Printf.sprintf
         "serve_scaling bench: binary batch=32 is %.2fx the line protocol \
          (floor is 2x)"
         speedup);
  (* axis 2: domain count under concurrent connections, line vs
     binary-batch on every point *)
  Format.fprintf ppf "  %8s %12s %14s   (8 connections)@." "domains"
    "line req/s" "binary@32";
  scaling_rows :=
    List.map
      (fun domains ->
        let sc_line_rps =
          measure ~domains ~connections:8 ~binary:false ~batch:1
        in
        let sc_binary_rps =
          measure ~domains ~connections:8 ~binary:true ~batch:32
        in
        Format.fprintf ppf "  %8d %12.0f %14.0f@." domains sc_line_rps
          sc_binary_rps;
        { sc_domains = domains; sc_line_rps; sc_binary_rps })
      [ 1; 2; 4; 8 ];
  (* sharding buys nothing on one core (the decision lock already
     serializes); assert it carries its weight only where it can *)
  (if Arnet_pool.available () > 1 then
     let d1 =
       List.find (fun r -> r.sc_domains = 1) !scaling_rows
     in
     let best =
       List.fold_left
         (fun acc r -> Float.max acc r.sc_line_rps)
         0.
         (List.filter (fun r -> r.sc_domains > 1) !scaling_rows)
     in
     if best < 0.9 *. d1.sc_line_rps then
       failwith
         (Printf.sprintf
            "serve_scaling bench: best sharded line throughput %.0f req/s \
             regressed below single-domain %.0f req/s on a %d-core machine"
            best d1.sc_line_rps
            (Arnet_pool.available ())));
  Report.paper_vs_measured ppf ~what:"service-plane scaling"
    ~paper:
      "(extension) signalling cost, not the routing rule, bounds \
       call-handling throughput"
    ~measured:
      (Printf.sprintf
         "batch=32 binary framing is %.1fx the line protocol on one \
          connection (%d cores available)"
         speedup
         (Arnet_pool.available ()))

(* ------------------------------------------------------------------ *)
(* route compilation at ISP scale: the sequential per-pair pipeline vs
   the memoized/parallel builder vs the incremental patch *)

type compile_row = {
  cr_nodes : int;
  cr_links : int;
  cr_pairs : int;
  cr_reference_s : float;
  cr_memoized_s : float;
  cr_parallel_s : float;
  cr_parallel_domains : int;
  cr_patch_s : float;
  cr_patch_recomputed : int;
}

let compile_rows : compile_row list ref = ref []

let compile () =
  Report.section ppf ~id:"compile"
    ~title:
      "Route compilation at ISP scale: sequential vs parallel vs \
       incremental";
  let module Ingest = Arnet_ingest in
  let module RT = Arnet_paths.Route_table in
  let sizes =
    match Sys.getenv_opt "ARNET_COMPILE_NODES" with
    | None -> [ 100; 500; 1000 ]
    | Some s ->
      List.filter_map int_of_string_opt (String.split_on_char ',' s)
  in
  (* unbounded H enumerates exponentially many loop-free alternates on a
     sparse 1000-node mesh; a deployment at this scale caps the
     alternate hop length, so the sweep does too *)
  let h = 6 in
  let domains = max 2 (Lazy.force config).Config.domains in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  Format.fprintf ppf
    "  H = %d alternate hops, degree-4 gravity meshes, %d domains@." h
    domains;
  Format.fprintf ppf
    "  %6s %6s %9s %9s %9s %9s %8s@." "nodes" "links" "ref-s"
    "memo-s" "par-s" "patch-s" "recomp";
  List.iter
    (fun nodes ->
      let t = Ingest.Mesh.random_mesh ~nodes () in
      let g = t.Ingest.Topo.graph in
      let reference, cr_reference_s =
        time (fun () -> RT.build_reference ~h g)
      in
      let memoized, cr_memoized_s = time (fun () -> RT.build ~h g) in
      let parallel, cr_parallel_s =
        time (fun () -> RT.build ~domains ~h g)
      in
      (* the headline guarantees, asserted on every run: the memoized
         and sharded builders reproduce the per-pair oracle path for
         path, and patching a removal back in restores the table *)
      if not (RT.equal reference memoized) then
        failwith "compile bench: memoized build differs from the oracle";
      if not (RT.equal memoized parallel) then
        failwith "compile bench: parallel build differs from sequential";
      let l = (Arnet_topology.Graph.links g).(0) in
      let src = l.Arnet_topology.Link.src
      and dst = l.Arnet_topology.Link.dst
      and capacity = l.Arnet_topology.Link.capacity in
      let (patched, cr_patch_recomputed), cr_patch_s =
        time (fun () -> RT.patch memoized [ RT.Remove_link { src; dst } ])
      in
      let restored, _ = RT.patch patched [ RT.Add_link { src; dst; capacity } ] in
      if not (RT.equal restored memoized) then
        failwith "compile bench: patch round-trip lost routes";
      Format.fprintf ppf "  %6d %6d %9.2f %9.2f %9.2f %9.2f %8d@." nodes
        (Arnet_topology.Graph.link_count g)
        cr_reference_s cr_memoized_s cr_parallel_s cr_patch_s
        cr_patch_recomputed;
      compile_rows :=
        { cr_nodes = nodes;
          cr_links = Arnet_topology.Graph.link_count g;
          cr_pairs = nodes * (nodes - 1);
          cr_reference_s;
          cr_memoized_s;
          cr_parallel_s;
          cr_parallel_domains = domains;
          cr_patch_s;
          cr_patch_recomputed }
        :: !compile_rows)
    sizes;
  compile_rows := List.rev !compile_rows;
  match List.rev !compile_rows with
  | [] -> ()
  | biggest :: _ ->
    Report.paper_vs_measured ppf
      ~what:"recompilation cost at the largest mesh"
      ~paper:"(extension) full per-pair rebuilds cannot track topology"
      ~measured:
        (Printf.sprintf
           "%d nodes: memoized %.1fx, single-link patch %.1fx faster \
            than the sequential full rebuild"
           biggest.cr_nodes
           (biggest.cr_reference_s /. Float.max 1e-9 biggest.cr_memoized_s)
           (biggest.cr_reference_s /. Float.max 1e-9 biggest.cr_patch_s))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels *)

let perf () =
  Report.section ppf ~id:"perf" ~title:"Kernel micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let g = Arnet_topology.Nsfnet.graph () in
  let routes = lazy (Arnet_paths.Route_table.build g) in
  let matrix =
    lazy (snd (Internet.nominal ()))
  in
  let trace =
    lazy
      (Arnet_sim.Trace.generate
         ~rng:(Arnet_sim.Rng.create ~seed:42)
         ~duration:5. (Lazy.force matrix))
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [ Test.make ~name:"erlang-blocking-table-c100"
          (Staged.stage (fun () ->
               Arnet_erlang.Erlang_b.blocking_table ~offered:80. ~capacity:100));
        Test.make ~name:"protection-level-c100-h11"
          (Staged.stage (fun () ->
               Arnet_core.Protection.level ~offered:80. ~capacity:100 ~h:11));
        Test.make ~name:"route-table-nsfnet-h11"
          (Staged.stage (fun () -> Arnet_paths.Route_table.build g));
        Test.make ~name:"simple-paths-0-to-6"
          (Staged.stage (fun () ->
               Arnet_paths.Enumerate.simple_paths g ~src:0 ~dst:6));
        Test.make ~name:"erlang-cutset-bound-nsfnet"
          (Staged.stage (fun () ->
               Arnet_bound.Erlang_bound.compute g (Lazy.force matrix)));
        Test.make ~name:"simulate-5tu-nominal-controlled"
          (Staged.stage (fun () ->
               let routes = Lazy.force routes in
               Arnet_sim.Engine.run ~warmup:1. ~graph:g
                 ~policy:
                   (Arnet_core.Scheme.controlled_auto
                      ~matrix:(Lazy.force matrix) routes)
                 (Lazy.force trace))) ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with
        | Some [ e ] -> Printf.sprintf "%12.0f ns/run" e
        | _ -> "(no estimate)"
      in
      let r2 =
        match Analyze.OLS.r_square o with
        | Some r -> Printf.sprintf "r2=%.3f" r
        | None -> ""
      in
      Format.fprintf ppf "  %-42s %s %s@." name est r2)
    (List.sort compare rows)

let sections =
  [ ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig4", fig4);
    ("fig3_d1", fig3_d1); ("fig5", fig5); ("table1", table1);
    ("fig6", fig6); ("fig7", fig7); ("fig6_d1", fig6_d1);
    ("exp_h6", exp_h6); ("exp_failures", exp_failures);
    ("exp_fairness", exp_fairness); ("exp_minloss", exp_minloss);
    ("exp_robustness", exp_robustness); ("exp_ablation", exp_ablation);
    ("exp_overload", exp_overload); ("ext_cellular", ext_cellular);
    ("ext_multirate", ext_multirate); ("ext_bistability", ext_bistability);
    ("ext_signalling", ext_signalling); ("ext_random_mesh", ext_random_mesh);
    ("ext_analytic", ext_analytic); ("ext_optimality", ext_optimality);
    ("ext_dimensioning", ext_dimensioning); ("ext_failure", ext_failure);
    ("serve", serve); ("storm", storm); ("serve_scaling", serve_scaling);
    ("perf", perf);
    (* last: the big route tables it builds bloat the major heap, which
       would tax the Bechamel stabilization passes of [perf] *)
    ("compile", compile) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  Format.fprintf ppf
    "Controlling Alternate Routing in General-Mesh Packet Flow Networks — \
     reproduction harness@.";
  Format.fprintf ppf "configuration: %s@."
    (Config.describe (Lazy.force config));
  let domains = (Lazy.force config).Config.domains in
  let recorder = Arnet_obs.Span.recorder () in
  let calls_at_start = Arnet_sim.Engine.calls_simulated () in
  (* sections that are single-domain by construction, whatever the
     configured count: the pinned reruns and the Bechamel kernels *)
  let single_domain = [ "fig3_d1"; "fig6_d1"; "compile"; "perf" ] in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
        let domains = if List.mem name single_domain then 1 else domains in
        Report.timed ~domains recorder name f
      | None ->
        Format.fprintf ppf "unknown section %S (available: %s)@." name
          (String.concat " " (List.map fst sections)))
    requested;
  (* machine-readable run record: per-section wall clock, simulated
     calls and throughput — the input for cross-version perf tracking *)
  let module J = Arnet_obs.Jsonu in
  let spans = Arnet_obs.Span.spans recorder in
  let total_wall =
    List.fold_left (fun acc s -> acc +. Arnet_obs.Span.elapsed s) 0. spans
  in
  let total_calls = Arnet_sim.Engine.calls_simulated () - calls_at_start in
  let doc =
    J.Obj
      ([ ("configuration", J.String (Config.describe (Lazy.force config)));
         ("domains", J.Int domains);
         ("sections", Arnet_obs.Span.recorder_to_json recorder);
         ("total_wall_s", J.Float total_wall);
         ("total_calls", J.Int total_calls);
         ("total_calls_per_s",
          J.Float
            (if total_wall > 0. then float_of_int total_calls /. total_wall
             else 0.)) ]
      @ (match !serve_result with
        | None -> []
        | Some r -> [ ("service", Arnet_service.Loadgen.to_json r) ])
      @ (match (!scaling_rows, !scaling_speedup) with
        | [], _ | _, None -> []
        | rows, Some speedup ->
          [ ("serve_scaling",
             J.Obj
               [ ("domains_available", J.Int (Arnet_pool.available ()));
                 ("binary_speedup", J.Float speedup);
                 ("batch_sweep",
                  J.List
                    (List.map
                       (fun (batch, rps) ->
                         J.Obj
                           [ ("batch", J.Int batch);
                             ("requests_per_s", J.Float rps) ])
                       !scaling_batches));
                 ("curve",
                  J.List
                    (List.map
                       (fun r ->
                         J.Obj
                           [ ("domains", J.Int r.sc_domains);
                             ("line_requests_per_s", J.Float r.sc_line_rps);
                             ("binary_requests_per_s",
                              J.Float r.sc_binary_rps) ])
                       rows)) ]) ])
      @ (match !compile_rows with
        | [] -> []
        | rows ->
          [ ("compile",
             J.List
               (List.map
                  (fun r ->
                    J.Obj
                      [ ("nodes", J.Int r.cr_nodes);
                        ("links", J.Int r.cr_links);
                        ("pairs", J.Int r.cr_pairs);
                        ("reference_s", J.Float r.cr_reference_s);
                        ("memoized_s", J.Float r.cr_memoized_s);
                        ("parallel_s", J.Float r.cr_parallel_s);
                        ("parallel_domains", J.Int r.cr_parallel_domains);
                        ("patch_s", J.Float r.cr_patch_s);
                        ("patch_recomputed", J.Int r.cr_patch_recomputed);
                        ("memoized_speedup",
                         J.Float
                           (r.cr_reference_s
                           /. Float.max 1e-9 r.cr_memoized_s));
                        ("patch_speedup",
                         J.Float
                           (r.cr_reference_s /. Float.max 1e-9 r.cr_patch_s))
                      ])
                  rows)) ])
      @
      match !storm_result with
      | None -> []
      | Some (r, stats, events) ->
        [ ("storm",
           J.Obj
             [ ("script_events", J.Int events);
               ("calls", J.Int r.Arnet_service.Loadgen.calls);
               ("accepted", J.Int r.Arnet_service.Loadgen.accepted);
               ("blocked", J.Int r.Arnet_service.Loadgen.blocked);
               ("errors", J.Int r.Arnet_service.Loadgen.errors);
               ("dropped", J.Int stats.Arnet_service.Wire.dropped);
               ("failovers", J.Int stats.Arnet_service.Wire.failovers);
               ("failed_links_at_drain",
                J.Int (List.length stats.Arnet_service.Wire.failed));
               ("availability",
                J.Float
                  (float_of_int r.Arnet_service.Loadgen.accepted
                  /. float_of_int r.Arnet_service.Loadgen.calls));
               ("requests_per_s",
                J.Float (Arnet_service.Loadgen.requests_per_second r)) ]) ])
  in
  let path =
    Option.value ~default:"BENCH_10.json" (Sys.getenv_opt "ARNET_BENCH_JSON")
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "@.wrote %s (%d sections, %.1fs wall, %d calls)@." path
    (List.length spans) total_wall total_calls
