open Arnet_topology
open Arnet_paths

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Distance_vector *)

let test_dv_agrees_with_bfs () =
  List.iter
    (fun g ->
      let dv = Distance_vector.compute g in
      Alcotest.(check bool) "matches centralized BFS" true
        (Distance_vector.agrees_with_bfs g dv))
    [ Nsfnet.graph ();
      Builders.full_mesh ~nodes:5 ~capacity:1;
      Builders.ring ~nodes:7 ~capacity:1;
      Graph.of_edges ~nodes:4 ~capacity:1 [ (0, 1); (2, 3) ] (* disconnected *) ]

let test_dv_convergence_cost () =
  let g = Builders.line ~nodes:6 ~capacity:1 in
  let dv = Distance_vector.compute g in
  (* information must travel the diameter: at least diameter rounds,
     plus one quiescent round *)
  Alcotest.(check bool) "rounds ~ diameter" true
    (Distance_vector.rounds dv >= Bfs.diameter g
    && Distance_vector.rounds dv <= Bfs.diameter g + 2);
  Alcotest.(check int) "messages = links x rounds"
    (Graph.link_count g * Distance_vector.rounds dv)
    (Distance_vector.messages dv)

let test_dv_queries () =
  let g = Nsfnet.graph () in
  let dv = Distance_vector.compute g in
  Alcotest.(check int) "self distance" 0 (Distance_vector.distance dv ~from:3 ~to_:3);
  Alcotest.(check int) "adjacent" 1 (Distance_vector.distance dv ~from:0 ~to_:1);
  let tbl = Distance_vector.table dv 0 in
  Alcotest.(check int) "table agrees" (Distance_vector.distance dv ~from:0 ~to_:6)
    tbl.(6);
  (* next hops lie on shortest paths *)
  let hops = Distance_vector.next_hops dv ~from:0 ~to_:6 in
  Alcotest.(check bool) "at least one next hop" true (hops <> []);
  List.iter
    (fun n ->
      Alcotest.(check int) "next hop one closer"
        (Distance_vector.distance dv ~from:0 ~to_:6 - 1)
        (Distance_vector.distance dv ~from:n ~to_:6))
    hops;
  (* the deterministic primary's first hop is the smallest next hop *)
  let p = Option.get (Bfs.min_hop_path g ~src:0 ~dst:6) in
  (match Path.nodes p with
  | _ :: second :: _ ->
    Alcotest.(check int) "primary starts at first next hop" (List.hd hops) second
  | _ -> Alcotest.fail "path too short")

(* ------------------------------------------------------------------ *)
(* Dalfar *)

let test_dalfar_matches_enumeration_nsfnet () =
  let g = Nsfnet.graph () in
  let dv = Distance_vector.compute g in
  for src = 0 to 11 do
    for dst = 0 to 11 do
      if src <> dst then begin
        Alcotest.(check bool)
          (Printf.sprintf "pair %d->%d full" src dst)
          true
          (Dalfar.matches_enumeration g dv ~src ~dst ~max_hops:11);
        Alcotest.(check bool)
          (Printf.sprintf "pair %d->%d capped" src dst)
          true
          (Dalfar.matches_enumeration g dv ~src ~dst ~max_hops:4)
      end
    done
  done

let test_dalfar_first_path_is_shortest () =
  let g = Nsfnet.graph () in
  let dv = Distance_vector.compute g in
  let paths, stats = Dalfar.find_paths g dv ~src:0 ~dst:6 ~max_hops:11 in
  (match paths with
  | first :: _ ->
    let shortest = Option.get (Bfs.min_hop_path g ~src:0 ~dst:6) in
    Alcotest.(check int) "first discovered has min hops" (Path.hops shortest)
      (Path.hops first)
  | [] -> Alcotest.fail "paths expected");
  Alcotest.(check bool) "crankbacks recorded" true (stats.Dalfar.crankbacks > 0);
  Alcotest.(check bool) "expansions recorded" true (stats.Dalfar.expansions > 0)

let test_dalfar_max_paths () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:1 in
  let dv = Distance_vector.compute g in
  let paths, _ = Dalfar.find_paths ~max_paths:2 g dv ~src:0 ~dst:1 ~max_hops:3 in
  Alcotest.(check int) "stops at limit" 2 (List.length paths)

let test_dalfar_first_available () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:1 in
  let dv = Distance_vector.compute g in
  (* refuse the direct path; the set-up must crank back and settle on a
     2-hop detour *)
  let admits p = Path.hops p >= 2 in
  (match Dalfar.first_available g dv ~src:0 ~dst:1 ~max_hops:3 ~admits with
  | Some (p, _) -> Alcotest.(check int) "detour found" 2 (Path.hops p)
  | None -> Alcotest.fail "path expected");
  (* admitting nothing exhausts the search *)
  Alcotest.(check bool) "no admissible path" true
    (Dalfar.first_available g dv ~src:0 ~dst:1 ~max_hops:3
       ~admits:(fun _ -> false)
    = None)

let test_dalfar_validation () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:1 in
  let dv = Distance_vector.compute g in
  check_invalid "src = dst" (fun () ->
      ignore (Dalfar.find_paths g dv ~src:0 ~dst:0 ~max_hops:2));
  check_invalid "bad max_hops" (fun () ->
      ignore (Dalfar.find_paths g dv ~src:0 ~dst:1 ~max_hops:0))

let prop_dalfar_equals_enumeration =
  QCheck2.Test.make ~count:60 ~name:"dalfar = enumeration on random graphs"
    QCheck2.Gen.(
      let* n = int_range 3 6 in
      let all =
        List.concat_map
          (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
          (List.init n (fun i -> i))
      in
      let spanning = List.init (n - 1) (fun i -> (i, i + 1)) in
      let* extra = list_size (int_range 0 5) (oneofl all) in
      let* h = int_range 1 5 in
      return (n, List.sort_uniq compare (spanning @ extra), h))
    (fun (n, edges, h) ->
      let g = Graph.of_edges ~nodes:n ~capacity:1 edges in
      let dv = Distance_vector.compute g in
      Dalfar.matches_enumeration g dv ~src:0 ~dst:(n - 1) ~max_hops:h)

let () =
  Alcotest.run "dalfar"
    [ ( "distance-vector",
        [ Alcotest.test_case "agrees with bfs" `Quick test_dv_agrees_with_bfs;
          Alcotest.test_case "convergence cost" `Quick test_dv_convergence_cost;
          Alcotest.test_case "queries" `Quick test_dv_queries ] );
      ( "dalfar",
        [ Alcotest.test_case "matches enumeration (nsfnet)" `Quick
            test_dalfar_matches_enumeration_nsfnet;
          Alcotest.test_case "first path shortest" `Quick
            test_dalfar_first_path_is_shortest;
          Alcotest.test_case "max paths" `Quick test_dalfar_max_paths;
          Alcotest.test_case "first available" `Quick
            test_dalfar_first_available;
          Alcotest.test_case "validation" `Quick test_dalfar_validation;
          QCheck_alcotest.to_alcotest prop_dalfar_equals_enumeration ] ) ]
