open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_optimize

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Flow *)

let diamond () =
  Graph.of_edges ~nodes:4 ~capacity:10 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_flow_make_and_query () =
  let g = diamond () in
  let upper = Path.make g [ 0; 1; 3 ] and lower = Path.make g [ 0; 2; 3 ] in
  let flow = Flow.make g [ ((0, 3), [ (upper, 0.25); (lower, 0.75) ]) ] in
  (match Flow.paths flow ~src:0 ~dst:3 with
  | [ (_, f1); (_, f2) ] ->
    feq_at 1e-12 "first fraction" 0.25 f1;
    feq_at 1e-12 "second fraction" 0.75 f2
  | _ -> Alcotest.fail "two entries expected");
  Alcotest.(check (list (pair (list int) (float 0.)))) "unlisted pair empty" []
    (List.map (fun (p, f) -> (Path.nodes p, f)) (Flow.paths flow ~src:1 ~dst:0));
  Alcotest.(check int) "support" 2 (Flow.support_size flow)

let test_flow_validation () =
  let g = diamond () in
  let upper = Path.make g [ 0; 1; 3 ] in
  check_invalid "fractions must sum to 1" (fun () ->
      ignore (Flow.make g [ ((0, 3), [ (upper, 0.4) ]) ]));
  check_invalid "wrong endpoints" (fun () ->
      ignore (Flow.make g [ ((1, 3), [ (upper, 1.) ]) ]));
  check_invalid "duplicate pair" (fun () ->
      ignore
        (Flow.make g
           [ ((0, 3), [ (upper, 1.) ]); ((0, 3), [ (upper, 1.) ]) ]));
  check_invalid "negative fraction" (fun () ->
      ignore
        (Flow.make g
           [ ((0, 3), [ (upper, 1.5); (Path.make g [ 0; 2; 3 ], -0.5) ]) ]))

let test_flow_sample () =
  let g = diamond () in
  let upper = Path.make g [ 0; 1; 3 ] and lower = Path.make g [ 0; 2; 3 ] in
  let flow = Flow.make g [ ((0, 3), [ (upper, 0.25); (lower, 0.75) ]) ] in
  (match Flow.sample flow ~src:0 ~dst:3 ~u:0.1 with
  | Some p -> Alcotest.(check (list int)) "low u -> first" [ 0; 1; 3 ] (Path.nodes p)
  | None -> Alcotest.fail "sample expected");
  (match Flow.sample flow ~src:0 ~dst:3 ~u:0.9 with
  | Some p -> Alcotest.(check (list int)) "high u -> second" [ 0; 2; 3 ] (Path.nodes p)
  | None -> Alcotest.fail "sample expected");
  Alcotest.(check bool) "missing pair" true
    (Flow.sample flow ~src:1 ~dst:0 ~u:0.5 = None);
  check_invalid "u out of range" (fun () ->
      ignore (Flow.sample flow ~src:0 ~dst:3 ~u:1.))

let test_flow_link_loads_and_hops () =
  let g = diamond () in
  let upper = Path.make g [ 0; 1; 3 ] and lower = Path.make g [ 0; 2; 3 ] in
  let flow = Flow.make g [ ((0, 3), [ (upper, 0.5); (lower, 0.5) ]) ] in
  let m = Matrix.make ~nodes:4 (fun i j -> if i = 0 && j = 3 then 8. else 0.) in
  let loads = Flow.link_loads flow m in
  let id01 = (Graph.find_link_exn g ~src:0 ~dst:1).Link.id in
  let id02 = (Graph.find_link_exn g ~src:0 ~dst:2).Link.id in
  feq_at 1e-12 "split load upper" 4. loads.(id01);
  feq_at 1e-12 "split load lower" 4. loads.(id02);
  feq_at 1e-12 "average hops" 2. (Flow.average_hops flow m)

(* ------------------------------------------------------------------ *)
(* Line_search *)

let test_line_search_quadratic () =
  let f x = ((x -. 0.3) ** 2.) +. 1. in
  feq_at 1e-4 "quadratic min" 0.3
    (Line_search.golden_section ~f ~lo:0. ~hi:1. ());
  feq_at 1e-4 "boundary min" 0.
    (Line_search.golden_section ~f:(fun x -> x) ~lo:0. ~hi:1. ());
  check_invalid "bad interval" (fun () ->
      ignore (Line_search.golden_section ~f ~lo:1. ~hi:0. ()))

(* ------------------------------------------------------------------ *)
(* Frank_wolfe *)

let test_objective_of_loads () =
  let v =
    Frank_wolfe.objective_of_loads ~capacities:[| 10; 5 |] ~loads:[| 8.; 0. |]
  in
  feq_at 1e-12 "sums loss rates"
    (Arnet_erlang.Erlang_b.loss_rate ~offered:8. ~capacity:10)
    v;
  check_invalid "length mismatch" (fun () ->
      ignore (Frank_wolfe.objective_of_loads ~capacities:[| 1 |] ~loads:[||]))

let test_frank_wolfe_splits_parallel_paths () =
  (* diamond with equal-capacity branches and heavy demand: the optimum
     splits close to 50/50 *)
  let g = diamond () in
  let m = Matrix.make ~nodes:4 (fun i j -> if i = 0 && j = 3 then 16. else 0.) in
  let r = Frank_wolfe.minimize_link_loss ~graph:g ~matrix:m () in
  Alcotest.(check bool) "converged" true (r.Frank_wolfe.relative_gap <= 1e-3);
  (match Flow.paths r.Frank_wolfe.flow ~src:0 ~dst:3 with
  | [ (_, f1); (_, f2) ] ->
    feq_at 0.05 "balanced split" 0.5 f1;
    feq_at 0.05 "balanced split" 0.5 f2
  | other ->
    Alcotest.failf "expected a bifurcated pair, got %d entries"
      (List.length other));
  (* splitting 16 over two C=10 branches loses far less than 16 on one *)
  let all_on_one =
    Arnet_erlang.Erlang_b.loss_rate ~offered:16. ~capacity:10 *. 2.
  in
  Alcotest.(check bool) "objective beats all-on-one-path" true
    (r.Frank_wolfe.objective < all_on_one)

let test_frank_wolfe_respects_low_load () =
  (* at trivial load everything stays on the shortest path *)
  let g = diamond () in
  let m = Matrix.make ~nodes:4 (fun i j -> if i = 0 && j = 3 then 0.1 else 0.) in
  let r = Frank_wolfe.minimize_link_loss ~graph:g ~matrix:m () in
  Alcotest.(check bool) "near-zero objective" true
    (r.Frank_wolfe.objective < 1e-6)

let test_frank_wolfe_nsfnet_improves () =
  let routes, fit = Fit.nsfnet_nominal () in
  let g = Route_table.graph routes in
  let capacities =
    Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
  in
  let minhop =
    Frank_wolfe.objective_of_loads ~capacities
      ~loads:(Loads.primary_link_loads routes fit.Fit.matrix)
  in
  let r =
    Frank_wolfe.minimize_link_loss ~max_iterations:60 ~graph:g
      ~matrix:fit.Fit.matrix ()
  in
  Alcotest.(check bool) "optimized below min-hop" true
    (r.Frank_wolfe.objective < minhop);
  Alcotest.(check bool) "some pairs bifurcated" true
    (Flow.support_size r.Frank_wolfe.flow > Matrix.demand_count fit.Fit.matrix)

let test_frank_wolfe_validation () =
  let g = Graph.of_edges ~nodes:3 ~capacity:5 [ (0, 1) ] in
  let m = Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 2 then 1. else 0.) in
  check_invalid "disconnected demand" (fun () ->
      ignore (Frank_wolfe.minimize_link_loss ~graph:g ~matrix:m ()))

let prop_frank_wolfe_never_worse_than_shortest =
  QCheck2.Test.make ~count:10 ~name:"optimum <= shortest-path assignment"
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let g = Builders.full_mesh ~nodes:4 ~capacity:8 in
      let st = Random.State.make [| seed |] in
      let m = Matrix.make ~nodes:4 (fun _ _ -> 1. +. Random.State.float st 10.) in
      let routes = Route_table.build g in
      let capacities =
        Array.map (fun (l : Link.t) -> l.Link.capacity) (Graph.links g)
      in
      let shortest =
        Frank_wolfe.objective_of_loads ~capacities
          ~loads:(Loads.primary_link_loads routes m)
      in
      let r = Frank_wolfe.minimize_link_loss ~max_iterations:80 ~graph:g ~matrix:m () in
      r.Frank_wolfe.objective <= shortest +. 1e-6)

let () =
  Alcotest.run "optimize"
    [ ( "flow",
        [ Alcotest.test_case "make/query" `Quick test_flow_make_and_query;
          Alcotest.test_case "validation" `Quick test_flow_validation;
          Alcotest.test_case "sample" `Quick test_flow_sample;
          Alcotest.test_case "link loads/hops" `Quick
            test_flow_link_loads_and_hops ] );
      ( "line-search",
        [ Alcotest.test_case "quadratic" `Quick test_line_search_quadratic ] );
      ( "frank-wolfe",
        [ Alcotest.test_case "objective" `Quick test_objective_of_loads;
          Alcotest.test_case "splits parallel paths" `Quick
            test_frank_wolfe_splits_parallel_paths;
          Alcotest.test_case "low load stays shortest" `Quick
            test_frank_wolfe_respects_low_load;
          Alcotest.test_case "nsfnet improves" `Slow
            test_frank_wolfe_nsfnet_improves;
          Alcotest.test_case "validation" `Quick test_frank_wolfe_validation;
          QCheck_alcotest.to_alcotest
            prop_frank_wolfe_never_worse_than_shortest ] ) ]
