(* The estimator, the adaptive controlled scheme, and footnote-5
   per-link H^k levels. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Estimator *)

let test_estimator_constant_rate () =
  let e = Estimator.create ~window:1. ~smoothing:0.5 () in
  (* 4 arrivals per unit time for 30 units *)
  for i = 0 to 119 do
    Estimator.observe e ~now:(float_of_int i /. 4.)
  done;
  feq_at 0.2 "converges to the rate" 4. (Estimator.estimate e ~now:30.);
  Alcotest.(check int) "observations counted" 120 (Estimator.observations e)

let test_estimator_tracks_change () =
  let e = Estimator.create ~window:1. ~smoothing:0.5 () in
  for i = 0 to 39 do
    Estimator.observe e ~now:(float_of_int i /. 4.)  (* rate 4 until t=10 *)
  done;
  let high = Estimator.estimate e ~now:10. in
  (* silence for 10 units: the estimate must decay towards zero *)
  let low = Estimator.estimate e ~now:20. in
  Alcotest.(check bool) "decays when traffic stops" true (low < 0.1 *. high);
  Alcotest.(check bool) "never negative" true (low >= 0.)

let test_estimator_initial_seed () =
  let e = Estimator.create ~initial:42. () in
  feq_at 1e-9 "cold start returns seed" 42. (Estimator.estimate e ~now:0.);
  (* seeded value fades as real (empty) windows arrive *)
  Alcotest.(check bool) "seed fades" true (Estimator.estimate e ~now:100. < 1.)

let test_estimator_holding_scale () =
  let e = Estimator.create ~window:1. ~smoothing:1. ~mean_holding:2. () in
  for i = 0 to 9 do
    Estimator.observe e ~now:(0.05 +. float_of_int i)
  done;
  (* rate 1/unit * holding 2 = 2 Erlangs *)
  feq_at 1e-9 "erlangs = rate x holding" 2. (Estimator.estimate e ~now:10.)

let test_estimator_validation () =
  check_invalid "bad window" (fun () ->
      ignore (Estimator.create ~window:0. ()));
  check_invalid "bad smoothing" (fun () ->
      ignore (Estimator.create ~smoothing:1.5 ()));
  check_invalid "negative initial" (fun () ->
      ignore (Estimator.create ~initial:(-1.) ()));
  let e = Estimator.create () in
  Estimator.observe e ~now:5.;
  check_invalid "time backwards" (fun () -> Estimator.observe e ~now:4.)

(* ------------------------------------------------------------------ *)
(* per-link H^k *)

let test_per_link_h_values () =
  (* K4 with H=3: the direct links carry 3-hop alternates, so H^k = 3 *)
  let g = Builders.full_mesh ~nodes:4 ~capacity:10 in
  let routes = Route_table.build g in
  let hs = Protection.per_link_h routes in
  Array.iter (fun h -> Alcotest.(check int) "K4 all links see 3-hop alts" 3 h) hs;
  (* line graph: no alternates at all -> H^k = 1 everywhere *)
  let line = Builders.line ~nodes:4 ~capacity:10 in
  let lr = Route_table.build line in
  Array.iter
    (fun h -> Alcotest.(check int) "line has no alternates" 1 h)
    (Protection.per_link_h lr)

let test_per_link_h_levels_never_higher () =
  let g = Nsfnet.graph () in
  let routes = Route_table.build ~h:6 g in
  let _, fit = Fit.nsfnet_nominal () in
  let matrix = fit.Fit.matrix in
  let global = Protection.levels routes matrix ~h:6 in
  let per_link = Protection.levels_per_link_h routes matrix in
  Array.iteri
    (fun k r ->
      Alcotest.(check bool) "per-link level <= global level" true
        (r <= global.(k)))
    per_link

let test_per_link_h_guarantee_preserved () =
  (* every alternate path's summed bound stays <= 1 under per-link H^k *)
  let g = Nsfnet.graph () in
  let routes = Route_table.build ~h:6 g in
  let _, fit = Fit.nsfnet_nominal () in
  let loads = Loads.primary_link_loads routes fit.Fit.matrix in
  let capacities =
    Array.map (fun (l : Link.t) -> l.capacity) (Graph.links g)
  in
  let reserves = Protection.levels_per_link_h routes fit.Fit.matrix in
  let admissible p =
    List.for_all (fun k -> reserves.(k) < capacities.(k)) (Path.link_ids p)
  in
  for src = 0 to 11 do
    for dst = 0 to 11 do
      if src <> dst then
        List.iter
          (fun p ->
            if admissible p then
              Alcotest.(check bool)
                (Printf.sprintf "guarantee on %s" (Path.to_string p))
                true
                (Protection.path_guarantee ~capacities ~loads ~reserves
                   ~link_ids:(Path.link_ids p)
                <= 1. +. 1e-9))
          (Route_table.alternates routes ~src ~dst)
    done
  done

(* ------------------------------------------------------------------ *)
(* adaptive scheme *)

let test_adaptive_learns_protection () =
  (* under sustained overload the adaptive scheme must start refusing
     alternates like the a-priori controlled scheme does *)
  let g = Builders.full_mesh ~nodes:4 ~capacity:50 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:50. in
  let seeds = [ 1; 2; 3 ] in
  let results =
    Engine.replicate_fresh ~warmup:20. ~seeds ~duration:120. ~graph:g ~matrix
      ~policies:(fun () ->
        [ Scheme.single_path routes;
          Scheme.uncontrolled routes;
          Scheme.controlled_auto ~matrix routes;
          Scheme.controlled_adaptive ~refresh:5. routes ])
      ()
  in
  let mean name =
    (Stats.blocking_summary (List.assoc name results)).Stats.mean
  in
  Alcotest.(check bool) "uncontrolled collapses" true
    (mean "uncontrolled" > mean "single-path");
  Alcotest.(check bool) "adaptive avoids the collapse" true
    (mean "controlled-adaptive" < mean "uncontrolled");
  Alcotest.(check bool) "adaptive close to a-priori controlled" true
    (Float.abs (mean "controlled-adaptive" -. mean "controlled") < 0.05)

let test_adaptive_initial_loads () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:10 in
  let routes = Route_table.build g in
  let loads = Array.make (Graph.link_count g) 9. in
  let policy = Scheme.controlled_adaptive ~initial_loads:loads routes in
  Alcotest.(check string) "named" "controlled-adaptive" (Scheme.name_of policy);
  check_invalid "bad refresh" (fun () ->
      ignore (Scheme.controlled_adaptive ~refresh:0. routes))

let test_replicate_fresh_guards_names () =
  let g = Builders.full_mesh ~nodes:3 ~capacity:5 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:2. in
  let flip = ref true in
  check_invalid "factory must be stable" (fun () ->
      ignore
        (Engine.replicate_fresh ~seeds:[ 1; 2 ] ~duration:20. ~graph:g ~matrix
           ~policies:(fun () ->
             flip := not !flip;
             if !flip then [ Scheme.single_path routes ]
             else [ Scheme.uncontrolled routes ])
           ()))

let () =
  Alcotest.run "adaptive"
    [ ( "estimator",
        [ Alcotest.test_case "constant rate" `Quick test_estimator_constant_rate;
          Alcotest.test_case "tracks change" `Quick test_estimator_tracks_change;
          Alcotest.test_case "initial seed" `Quick test_estimator_initial_seed;
          Alcotest.test_case "holding scale" `Quick test_estimator_holding_scale;
          Alcotest.test_case "validation" `Quick test_estimator_validation ] );
      ( "per-link-h",
        [ Alcotest.test_case "values" `Quick test_per_link_h_values;
          Alcotest.test_case "levels never higher" `Quick
            test_per_link_h_levels_never_higher;
          Alcotest.test_case "guarantee preserved" `Quick
            test_per_link_h_guarantee_preserved ] );
      ( "adaptive-scheme",
        [ Alcotest.test_case "learns protection" `Slow
            test_adaptive_learns_protection;
          Alcotest.test_case "construction" `Quick test_adaptive_initial_loads;
          Alcotest.test_case "replicate_fresh name guard" `Quick
            test_replicate_fresh_guards_names ] ) ]
