open Arnet_topology
open Arnet_traffic
open Arnet_bound

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

let two_node capacity = Graph.of_edges ~nodes:2 ~capacity [ (0, 1) ]

(* ------------------------------------------------------------------ *)
(* Cutset *)

let test_cutset_evaluate () =
  let g = two_node 10 in
  let m = Matrix.of_array [| [| 0.; 8. |]; [| 3.; 0. |] |] in
  let cut = Cutset.evaluate g m ~members:[| true; false |] in
  feq_at 1e-12 "forward traffic" 8. cut.Cutset.forward.Cutset.traffic;
  Alcotest.(check int) "forward capacity" 10 cut.Cutset.forward.Cutset.capacity;
  feq_at 1e-12 "backward traffic" 3. cut.Cutset.backward.Cutset.traffic;
  Alcotest.(check int) "backward capacity" 10
    cut.Cutset.backward.Cutset.capacity

let test_cutset_validation () =
  let g = two_node 10 in
  let m = Matrix.uniform ~nodes:2 ~demand:1. in
  check_invalid "empty cut" (fun () ->
      ignore (Cutset.evaluate g m ~members:[| false; false |]));
  check_invalid "full cut" (fun () ->
      ignore (Cutset.evaluate g m ~members:[| true; true |]));
  check_invalid "wrong size" (fun () ->
      ignore (Cutset.evaluate g m ~members:[| true |]))

let test_fold_cuts_visits_all () =
  let g = Builders.ring ~nodes:4 ~capacity:1 in
  let seen = Hashtbl.create 16 in
  let count =
    Cutset.fold_cuts g ~init:0 ~f:(fun acc members ->
        let key = Array.to_list members in
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen key);
        Hashtbl.add seen key ();
        acc + 1)
  in
  Alcotest.(check int) "2^4 - 2 cuts" 14 count;
  Alcotest.(check int) "cut_count agrees" 14 (Cutset.cut_count g)

(* ------------------------------------------------------------------ *)
(* Erlang_bound *)

let test_bound_single_edge_exact () =
  (* one edge, traffic only 0->1: the only binding cut gives exactly the
     weighted Erlang blocking of the two directions *)
  let g = two_node 10 in
  let m = Matrix.of_array [| [| 0.; 12. |]; [| 6.; 0. |] |] in
  let expected =
    (12. /. 18. *. Arnet_erlang.Erlang_b.blocking ~offered:12. ~capacity:10)
    +. (6. /. 18. *. Arnet_erlang.Erlang_b.blocking ~offered:6. ~capacity:10)
  in
  feq_at 1e-12 "two-node bound" expected (Erlang_bound.compute g m)

let test_bound_monotone_in_load () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:50 in
  let m = Matrix.uniform ~nodes:4 ~demand:30. in
  let b1 = Erlang_bound.compute g m in
  let b2 = Erlang_bound.compute g (Matrix.scale m 1.5) in
  Alcotest.(check bool) "higher load, higher bound" true (b2 > b1)

let test_bound_argmax_consistent () =
  let g = Nsfnet.graph () in
  let _, fit = Fit.nsfnet_nominal () in
  let m = fit.Fit.matrix in
  let bound, cut = Erlang_bound.compute_with_argmax g m in
  feq_at 1e-12 "argmax cut achieves the bound" bound
    (Erlang_bound.of_cut g m ~members:cut);
  (* regression: nominal NSFNet bound is about 10% *)
  Alcotest.(check bool) "nominal bound plausible" true
    (bound > 0.06 && bound < 0.14)

let test_bound_zero_capacity_direction () =
  (* traffic crossing a cut with zero capacity in that direction is all
     lost: bound includes the full traffic share *)
  let g =
    Graph.create ~nodes:2
      [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity:5 ]
  in
  let m = Matrix.of_array [| [| 0.; 2. |]; [| 2.; 0. |] |] in
  let b = Erlang_bound.of_cut g m ~members:[| true; false |] in
  (* backward direction: traffic 2, capacity 0 -> contributes 0.5 *)
  Alcotest.(check bool) "at least half lost" true (b >= 0.5);
  check_invalid "empty matrix" (fun () ->
      ignore (Erlang_bound.compute g (Matrix.zero ~nodes:2)))

let test_bound_below_simulated_blocking () =
  (* the bound must lie below what any of our schemes achieve *)
  let g = Builders.full_mesh ~nodes:4 ~capacity:30 in
  let m = Matrix.uniform ~nodes:4 ~demand:35. in
  let bound = Erlang_bound.compute g m in
  let routes = Arnet_paths.Route_table.build g in
  let results =
    Arnet_sim.Engine.replicate ~warmup:5. ~seeds:[ 1; 2; 3 ] ~duration:60.
      ~graph:g ~matrix:m
      ~policies:
        [ Arnet_core.Scheme.single_path routes;
          Arnet_core.Scheme.uncontrolled routes;
          Arnet_core.Scheme.controlled_auto ~matrix:m routes ]
      ()
  in
  List.iter
    (fun (name, runs) ->
      let s = Arnet_sim.Stats.blocking_summary runs in
      Alcotest.(check bool)
        (Printf.sprintf "bound below %s (within noise)" name)
        true
        (bound <= s.Arnet_sim.Stats.mean +. (3. *. s.Arnet_sim.Stats.std_error) +. 0.01))
    results

let prop_bound_in_unit_interval =
  QCheck2.Test.make ~count:50 ~name:"bound lies in [0, 1]"
    QCheck2.Gen.(float_range 1. 100.)
    (fun demand ->
      let g = Builders.ring ~nodes:5 ~capacity:40 in
      let m = Matrix.uniform ~nodes:5 ~demand in
      let b = Erlang_bound.compute g m in
      b >= 0. && b <= 1.)

let () =
  Alcotest.run "bound"
    [ ( "cutset",
        [ Alcotest.test_case "evaluate" `Quick test_cutset_evaluate;
          Alcotest.test_case "validation" `Quick test_cutset_validation;
          Alcotest.test_case "fold visits all" `Quick test_fold_cuts_visits_all ] );
      ( "erlang-bound",
        [ Alcotest.test_case "single edge exact" `Quick
            test_bound_single_edge_exact;
          Alcotest.test_case "monotone in load" `Quick
            test_bound_monotone_in_load;
          Alcotest.test_case "argmax consistent" `Quick
            test_bound_argmax_consistent;
          Alcotest.test_case "zero-capacity direction" `Quick
            test_bound_zero_capacity_direction;
          Alcotest.test_case "below simulation" `Slow
            test_bound_below_simulated_blocking;
          QCheck_alcotest.to_alcotest prop_bound_in_unit_interval ] ) ]
