open Arnet_sim
open Arnet_cellular

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Cell_grid *)

let test_reuse3_structure () =
  let grid = Cell_grid.reuse3_grid ~rows:4 ~cols:5 ~capacity:50 in
  Alcotest.(check int) "cells" 20 grid.Cell_grid.cells;
  Alcotest.(check int) "capacity" 50 grid.Cell_grid.capacity;
  Alcotest.(check int) "corner has 2 neighbours" 2
    (Array.length grid.Cell_grid.neighbors.(0));
  Alcotest.(check int) "interior has 4 neighbours" 4
    (Array.length grid.Cell_grid.neighbors.(6));
  Alcotest.(check int) "lock sets capped at 3" 3
    (Cell_grid.max_lock_set_size grid);
  (* every lock set contains its lender and has size in [1, 3] *)
  Array.iteri
    (fun borrower per_neighbour ->
      Array.iteri
        (fun idx lock_set ->
          let lender = grid.Cell_grid.neighbors.(borrower).(idx) in
          Alcotest.(check bool) "contains lender" true
            (Array.exists (fun c -> c = lender) lock_set);
          Alcotest.(check bool) "size in range" true
            (Array.length lock_set >= 1 && Array.length lock_set <= 3))
        per_neighbour)
    grid.Cell_grid.lock_sets

let test_grid_make_validation () =
  check_invalid "self borrow" (fun () ->
      ignore
        (Cell_grid.make ~capacity:5
           ~neighbors:[| [| 0 |]; [| 0 |] |]
           ~lock_sets:[| [| [| 0 |] |]; [| [| 0 |] |] |]));
  check_invalid "lock set must contain lender" (fun () ->
      ignore
        (Cell_grid.make ~capacity:5
           ~neighbors:[| [| 1 |]; [| 0 |] |]
           ~lock_sets:[| [| [| 0 |] |]; [| [| 0 |] |] |]));
  check_invalid "capacity < 1" (fun () ->
      ignore (Cell_grid.reuse3_grid ~rows:4 ~cols:5 ~capacity:0));
  check_invalid "grid too small" (fun () ->
      ignore (Cell_grid.reuse3_grid ~rows:1 ~cols:2 ~capacity:5))

(* ------------------------------------------------------------------ *)
(* Borrowing *)

let test_protection_levels () =
  let grid = Cell_grid.reuse3_grid ~rows:4 ~cols:5 ~capacity:50 in
  let offered = Array.make 20 40. in
  offered.(3) <- 0.;
  let levels = Borrowing.protection_levels grid ~offered_per_cell:offered in
  Alcotest.(check int) "idle cell unprotected" 0 levels.(3);
  Alcotest.(check bool) "loaded cell protected" true (levels.(0) > 0);
  (* H = 3 for 3-cell lock sets; same as the network formula *)
  Alcotest.(check int) "matches Section 3.1 level"
    (Arnet_core.Protection.level ~offered:40. ~capacity:50 ~h:3)
    levels.(0);
  check_invalid "length mismatch" (fun () ->
      ignore (Borrowing.protection_levels grid ~offered_per_cell:[| 1. |]))

let test_admits_borrow () =
  let grid = Cell_grid.reuse3_grid ~rows:4 ~cols:5 ~capacity:10 in
  let occupancy = Array.make 20 0 in
  let lock_set = grid.Cell_grid.lock_sets.(0).(0) in
  Alcotest.(check bool) "no-borrowing refuses" false
    (Borrowing.admits_borrow grid Borrowing.No_borrowing ~occupancy ~lock_set);
  Alcotest.(check bool) "uncontrolled admits on empty" true
    (Borrowing.admits_borrow grid Borrowing.Uncontrolled ~occupancy ~lock_set);
  let levels = Array.make 20 3 in
  Alcotest.(check bool) "controlled admits below threshold" true
    (Borrowing.admits_borrow grid (Borrowing.Controlled levels) ~occupancy
       ~lock_set);
  (* fill one lock cell to the threshold: 10 - 3 = 7 *)
  occupancy.(lock_set.(0)) <- 7;
  Alcotest.(check bool) "controlled refuses at threshold" false
    (Borrowing.admits_borrow grid (Borrowing.Controlled levels) ~occupancy
       ~lock_set);
  Alcotest.(check bool) "uncontrolled still admits" true
    (Borrowing.admits_borrow grid Borrowing.Uncontrolled ~occupancy ~lock_set);
  Alcotest.(check string) "names" "controlled-borrowing"
    (Borrowing.variant_name (Borrowing.Controlled levels))

(* ------------------------------------------------------------------ *)
(* Cell_sim *)

let test_generate_calls () =
  let rng = Rng.create ~seed:4 in
  let calls =
    Cell_sim.generate_calls ~rng ~duration:50.
      ~offered_per_cell:[| 10.; 5.; 0. |]
  in
  Alcotest.(check bool) "plausible volume" true
    (Array.length calls > 600 && Array.length calls < 900);
  let sorted = ref true and prev = ref 0. in
  Array.iter
    (fun c ->
      if c.Cell_sim.time < !prev then sorted := false;
      prev := c.Cell_sim.time;
      Alcotest.(check bool) "no calls to idle cell" true (c.Cell_sim.cell <> 2))
    calls;
  Alcotest.(check bool) "sorted" true !sorted;
  check_invalid "no traffic" (fun () ->
      ignore (Cell_sim.generate_calls ~rng ~duration:1. ~offered_per_cell:[| 0. |]))

let test_borrowing_happens_under_hot_spot () =
  let grid = Cell_grid.reuse3_grid ~rows:3 ~cols:3 ~capacity:10 in
  let offered = Array.make 9 2. in
  offered.(0) <- 25.;  (* overloaded corner *)
  let rng = Rng.create ~seed:5 in
  let calls = Cell_sim.generate_calls ~rng ~duration:60. ~offered_per_cell:offered in
  let unc = Cell_sim.run ~grid ~variant:Borrowing.Uncontrolled calls in
  let nob = Cell_sim.run ~grid ~variant:Borrowing.No_borrowing calls in
  Alcotest.(check bool) "borrowing used" true (unc.Cell_sim.borrowed > 0);
  Alcotest.(check int) "no borrowing never borrows" 0 nob.Cell_sim.borrowed;
  Alcotest.(check bool) "borrowing relieves the hot spot" true
    (Cell_sim.blocking unc < Cell_sim.blocking nob);
  Alcotest.(check int) "same offered (same workload)" nob.Cell_sim.offered
    unc.Cell_sim.offered

let test_controlled_never_worse_than_no_borrowing () =
  let grid = Cell_grid.reuse3_grid ~rows:3 ~cols:4 ~capacity:20 in
  let offered = Array.make 12 16. in
  offered.(0) <- 26.;
  let levels = Borrowing.protection_levels grid ~offered_per_cell:offered in
  let results =
    Cell_sim.compare_variants ~warmup:5. ~seeds:[ 1; 2; 3; 4 ] ~duration:60.
      ~grid ~offered_per_cell:offered
      ~variants:
        [ Borrowing.No_borrowing; Borrowing.Controlled levels;
          Borrowing.Uncontrolled ]
      ()
  in
  let mean name =
    (Stats.summarize (List.assoc name results)).Stats.mean
  in
  Alcotest.(check bool) "controlled <= no borrowing (within noise)" true
    (mean "controlled-borrowing" <= mean "no-borrowing" +. 0.01)

let test_per_cell_accounting () =
  let grid = Cell_grid.reuse3_grid ~rows:2 ~cols:3 ~capacity:5 in
  let offered = [| 10.; 1.; 1.; 1.; 1.; 1. |] in
  let rng = Rng.create ~seed:6 in
  let calls = Cell_sim.generate_calls ~rng ~duration:40. ~offered_per_cell:offered in
  let o = Cell_sim.run ~grid ~variant:Borrowing.No_borrowing calls in
  Alcotest.(check int) "per-cell offered sums to total" o.Cell_sim.offered
    (Array.fold_left ( + ) 0 o.Cell_sim.offered_per_cell);
  Alcotest.(check int) "per-cell blocked sums to total" o.Cell_sim.blocked
    (Array.fold_left ( + ) 0 o.Cell_sim.blocked_per_cell);
  Alcotest.(check bool) "hot cell blocks most" true
    (o.Cell_sim.blocked_per_cell.(0)
    >= Array.fold_left max 0 (Array.sub o.Cell_sim.blocked_per_cell 1 5))

let () =
  Alcotest.run "cellular"
    [ ( "cell-grid",
        [ Alcotest.test_case "reuse3 structure" `Quick test_reuse3_structure;
          Alcotest.test_case "validation" `Quick test_grid_make_validation ] );
      ( "borrowing",
        [ Alcotest.test_case "protection levels" `Quick test_protection_levels;
          Alcotest.test_case "admits borrow" `Quick test_admits_borrow ] );
      ( "cell-sim",
        [ Alcotest.test_case "workload generation" `Quick test_generate_calls;
          Alcotest.test_case "borrowing under hot spot" `Quick
            test_borrowing_happens_under_hot_spot;
          Alcotest.test_case "controlled never worse" `Slow
            test_controlled_never_worse_than_no_borrowing;
          Alcotest.test_case "per-cell accounting" `Quick
            test_per_cell_accounting ] ) ]
