test/test_instrument.ml: Alcotest Arnet_core Arnet_paths Arnet_sim Arnet_topology Arnet_traffic Array Builders Engine Graph Instrument Link List Matrix Rng Route_table Stats Trace
