test/test_topology.ml: Alcotest Arnet_topology Array Builders Graph Link List Nsfnet Printf QCheck2 QCheck_alcotest String
