test/test_erlang.ml: Alcotest Arnet_erlang Array Birth_death Erlang_b Float List Printf QCheck2 QCheck_alcotest Reduced_load Shadow_price
