test/test_mdp.ml: Alcotest Arnet_core Arnet_erlang Arnet_experiments Arnet_mdp Array Float List Loss_mdp Printf
