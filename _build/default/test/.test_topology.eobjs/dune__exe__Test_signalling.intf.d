test/test_signalling.mli:
