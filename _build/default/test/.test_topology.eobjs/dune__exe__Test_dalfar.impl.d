test/test_dalfar.ml: Alcotest Arnet_paths Arnet_topology Array Bfs Builders Dalfar Distance_vector Graph List Nsfnet Option Path Printf QCheck2 QCheck_alcotest
