test/test_erlang.mli:
