test/test_paths.ml: Alcotest Arnet_paths Arnet_topology Array Bfs Builders Dijkstra Enumerate Graph Link List Nsfnet Option Path Printf QCheck2 QCheck_alcotest Route_table Suurballe Yen
