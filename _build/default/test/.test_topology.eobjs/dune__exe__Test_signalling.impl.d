test/test_signalling.ml: Alcotest Arnet_core Arnet_paths Arnet_signalling Arnet_sim Arnet_topology Arnet_traffic Array Builders Graph List Matrix Printf Protection Rng Route_table Setup_sim Trace
