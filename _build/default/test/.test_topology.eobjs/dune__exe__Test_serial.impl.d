test/test_serial.ml: Alcotest Arnet_serial Arnet_topology Arnet_traffic Filename Fit Graph Link List Matrix Nsfnet QCheck2 QCheck_alcotest Spec String Sys
