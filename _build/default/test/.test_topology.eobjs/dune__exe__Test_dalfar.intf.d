test/test_dalfar.mli:
