test/test_multirate.mli:
