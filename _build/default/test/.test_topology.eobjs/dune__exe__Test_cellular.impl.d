test/test_cellular.ml: Alcotest Arnet_cellular Arnet_core Arnet_sim Array Borrowing Cell_grid Cell_sim List Rng Stats
