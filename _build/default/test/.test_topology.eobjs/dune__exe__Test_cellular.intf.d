test/test_cellular.mli:
