open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core
open Arnet_signalling

let check_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let feq_at tol = Alcotest.(check (float tol))

let mk_call time src dst holding = { Trace.time; src; dst; holding; u = 0. }

let one_link capacity =
  let g = Graph.of_edges ~nodes:2 ~capacity [ (0, 1) ] in
  (g, Route_table.build g, Matrix.make ~nodes:2 (fun i _ -> if i = 0 then 1. else 0.))

(* ------------------------------------------------------------------ *)

let test_zero_latency_equivalence () =
  List.iter
    (fun (label, graph, matrix, h) ->
      let routes = Route_table.build ?h graph in
      let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
      List.iter
        (fun seed ->
          let rng = Rng.substream (Rng.create ~seed) "trace" in
          let trace = Trace.generate ~rng ~duration:40. matrix in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d" label seed)
            true
            (Setup_sim.compare_with_atomic ~warmup:5. ~graph ~routes ~reserves
               trace))
        [ 1; 2; 3 ])
    [ ( "quadrangle",
        Builders.full_mesh ~nodes:4 ~capacity:30,
        Matrix.uniform ~nodes:4 ~demand:25.,
        None );
      ( "ring",
        Builders.ring ~nodes:5 ~capacity:10,
        Matrix.uniform ~nodes:5 ~demand:4.,
        Some 4 ) ]

let test_glare_micro_scenario () =
  (* C = 1, hop latency 0.5: B's forward check passes before A books,
     then B's booking collides *)
  let g, routes, matrix = one_link 1 in
  let reserves = [| 0; 0 |] in
  let trace =
    Trace.of_calls ~matrix ~duration:20.
      [ mk_call 0. 0 1 10.; mk_call 0.4 0 1 10. ]
  in
  let s =
    Setup_sim.run ~warmup:0. ~hop_latency:0.5 ~graph:g ~routes ~reserves
      ~allow_alternates:true trace
  in
  Alcotest.(check int) "one glare" 1 s.Setup_sim.glare_events;
  Alcotest.(check int) "one carried" 1 s.Setup_sim.carried_primary;
  Alcotest.(check int) "one blocked" 1 s.Setup_sim.blocked;
  (* at zero latency the same trace has no glare: B is cleanly refused
     at the forward check *)
  let s0 =
    Setup_sim.run ~warmup:0. ~hop_latency:0. ~graph:g ~routes ~reserves
      ~allow_alternates:true trace
  in
  Alcotest.(check int) "no glare at zero latency" 0 s0.Setup_sim.glare_events;
  Alcotest.(check int) "still one blocked" 1 s0.Setup_sim.blocked

let test_setup_latency_accounting () =
  (* a single uncontested 1-hop call: established after 2 * latency *)
  let g, routes, matrix = one_link 5 in
  let trace = Trace.of_calls ~matrix ~duration:20. [ mk_call 1. 0 1 2. ] in
  let s =
    Setup_sim.run ~warmup:0. ~hop_latency:0.25 ~graph:g ~routes
      ~reserves:[| 0; 0 |] ~allow_alternates:false trace
  in
  feq_at 1e-9 "round trip = 2 hops x latency" 0.5
    (Setup_sim.mean_setup_latency s);
  Alcotest.(check int) "one attempt" 1 s.Setup_sim.setup_attempts

let test_crankback_then_alternate () =
  (* triangle: direct link full, the set-up cranks back and succeeds on
     the 2-hop detour; latency = 1 round trip on direct + 1 on detour *)
  let g = Builders.full_mesh ~nodes:3 ~capacity:1 in
  let routes = Route_table.build g in
  let matrix = Matrix.make ~nodes:3 (fun i j -> if i = 0 && j = 1 then 1. else 0.) in
  let reserves = Array.make (Graph.link_count g) 0 in
  let trace =
    Trace.of_calls ~matrix ~duration:30.
      [ mk_call 1. 0 1 20.; mk_call 5. 0 1 5. ]
  in
  let s =
    Setup_sim.run ~warmup:0. ~hop_latency:0.1 ~graph:g ~routes ~reserves
      ~allow_alternates:true trace
  in
  Alcotest.(check int) "both carried" 0 s.Setup_sim.blocked;
  Alcotest.(check int) "one alternate" 1 s.Setup_sim.carried_alternate;
  (* call 2: direct check fails immediately at the origin (0 hops
     crossed), then the 2-hop detour takes 4 x 0.1 *)
  feq_at 1e-9 "latency sums the attempts"
    ((0.2 +. 0.4) /. 2.)
    (Setup_sim.mean_setup_latency s)

let test_protection_respected_under_latency () =
  (* protected link never accepts an alternate booking even mid-flight *)
  let g = Builders.full_mesh ~nodes:3 ~capacity:2 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:3 ~demand:1. in
  let reserves = Array.make (Graph.link_count g) 2 in
  (* full protection: r = C *)
  let trace =
    Trace.of_calls ~matrix ~duration:30.
      [ mk_call 1. 0 1 20.; mk_call 2. 0 1 20.; mk_call 3. 0 1 5. ]
  in
  let s =
    Setup_sim.run ~warmup:0. ~hop_latency:0.05 ~graph:g ~routes ~reserves
      ~allow_alternates:true trace
  in
  Alcotest.(check int) "third call blocked (alternates protected)" 1
    s.Setup_sim.blocked;
  Alcotest.(check int) "no alternates carried" 0 s.Setup_sim.carried_alternate

let test_blocking_grows_with_latency () =
  let g = Builders.full_mesh ~nodes:4 ~capacity:20 in
  let routes = Route_table.build g in
  let matrix = Matrix.uniform ~nodes:4 ~demand:18. in
  let reserves = Protection.levels routes matrix ~h:3 in
  let rng = Rng.substream (Rng.create ~seed:7) "trace" in
  let trace = Trace.generate ~rng ~duration:60. matrix in
  let blocking d =
    Setup_sim.blocking
      (Setup_sim.run ~warmup:10. ~hop_latency:d ~graph:g ~routes ~reserves
         ~allow_alternates:true trace)
  in
  let b0 = blocking 0. and b_slow = blocking 0.2 in
  Alcotest.(check bool) "slow signalling hurts" true (b_slow > b0)

let test_validation () =
  let g, routes, matrix = one_link 2 in
  let trace = Trace.of_calls ~matrix ~duration:10. [ mk_call 1. 0 1 1. ] in
  check_invalid "negative latency" (fun () ->
      ignore
        (Setup_sim.run ~hop_latency:(-1.) ~graph:g ~routes ~reserves:[| 0; 0 |]
           ~allow_alternates:true trace));
  check_invalid "warmup out of range" (fun () ->
      ignore
        (Setup_sim.run ~warmup:10. ~graph:g ~routes ~reserves:[| 0; 0 |]
           ~allow_alternates:true trace))

let () =
  Alcotest.run "signalling"
    [ ( "setup-sim",
        [ Alcotest.test_case "zero-latency = atomic engine" `Quick
            test_zero_latency_equivalence;
          Alcotest.test_case "glare micro-scenario" `Quick
            test_glare_micro_scenario;
          Alcotest.test_case "latency accounting" `Quick
            test_setup_latency_accounting;
          Alcotest.test_case "crankback then alternate" `Quick
            test_crankback_then_alternate;
          Alcotest.test_case "protection under latency" `Quick
            test_protection_respected_under_latency;
          Alcotest.test_case "blocking grows with latency" `Quick
            test_blocking_grows_with_latency;
          Alcotest.test_case "validation" `Quick test_validation ] ) ]
