open Arnet_topology
open Arnet_traffic
open Arnet_serial

let parse_fails name text =
  Alcotest.test_case name `Quick (fun () ->
      match Spec.of_string text with
      | exception Spec.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected a parse error for %S" text)

let test_basic_parse () =
  let spec =
    Spec.of_string
      "# a comment\n\
       nodes 3\n\
       label 0 west\n\
       edge 0 1 10\n\
       link 1 2 5\n\
       demand 0 2 3.5\n\
       demand 2 0 1\n"
  in
  let g = spec.Spec.graph in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "links: 2 from edge + 1" 3 (Graph.link_count g);
  Alcotest.(check string) "label" "west" (Graph.label g 0);
  Alcotest.(check string) "default label" "2" (Graph.label g 2);
  Alcotest.(check int) "edge capacity" 10
    (Graph.find_link_exn g ~src:1 ~dst:0).Link.capacity;
  Alcotest.(check bool) "directed link has no twin" true
    (Graph.find_link g ~src:2 ~dst:1 = None);
  match spec.Spec.matrix with
  | None -> Alcotest.fail "matrix expected"
  | Some m ->
    Alcotest.(check (float 1e-12)) "demand" 3.5 (Matrix.get m 0 2);
    Alcotest.(check (float 1e-12)) "total" 4.5 (Matrix.total m)

let test_no_demands_no_matrix () =
  let spec = Spec.of_string "nodes 2\nedge 0 1 4\n" in
  Alcotest.(check bool) "no matrix" true (spec.Spec.matrix = None)

let test_comments_and_whitespace () =
  let spec =
    Spec.of_string "\n  nodes 2  # trailing\n\t edge\t0   1  7\n\n# end\n"
  in
  Alcotest.(check int) "parsed through noise" 2
    (Graph.link_count spec.Spec.graph)

let test_error_line_numbers () =
  (match Spec.of_string "nodes 2\nbogus 1 2\n" with
  | exception Spec.Parse_error (2, msg) ->
    Alcotest.(check bool) "mentions directive" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error on line 2");
  match Spec.of_string "" with
  | exception Spec.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "empty spec must fail"

let test_roundtrip_builtin () =
  let g = Nsfnet.graph () in
  Alcotest.(check bool) "nsfnet roundtrips" true (Spec.roundtrip_ok g);
  let _, fit = Fit.nsfnet_nominal () in
  Alcotest.(check bool) "nsfnet + matrix roundtrips" true
    (Spec.roundtrip_ok ~matrix:fit.Fit.matrix g)

let test_roundtrip_asymmetric () =
  let g =
    Graph.create ~nodes:3
      [ Link.make ~id:0 ~src:0 ~dst:1 ~capacity:5;
        Link.make ~id:1 ~src:1 ~dst:0 ~capacity:7;  (* unequal pair *)
        Link.make ~id:2 ~src:1 ~dst:2 ~capacity:3 ]
  in
  Alcotest.(check bool) "asymmetric graph roundtrips" true
    (Spec.roundtrip_ok g)

let test_of_file () =
  let path = Filename.temp_file "arnet" ".net" in
  let oc = open_out path in
  output_string oc (Spec.to_string (Nsfnet.graph ()));
  close_out oc;
  let spec = Spec.of_file path in
  Sys.remove path;
  Alcotest.(check int) "loaded from file" 30
    (Graph.link_count spec.Spec.graph)

let prop_random_graph_roundtrip =
  QCheck2.Test.make ~count:60 ~name:"random graphs roundtrip"
    QCheck2.Gen.(
      let* n = int_range 2 7 in
      let all =
        List.concat_map
          (fun i -> List.init (n - i - 1) (fun j -> (i, i + j + 1)))
          (List.init n (fun i -> i))
      in
      let* chosen = list_size (int_range 1 8) (oneofl all) in
      let* cap = int_range 0 50 in
      return (n, List.sort_uniq compare chosen, cap))
    (fun (n, edges, cap) ->
      let g = Graph.of_edges ~nodes:n ~capacity:cap edges in
      Spec.roundtrip_ok g)

let () =
  Alcotest.run "serial"
    [ ( "parse",
        [ Alcotest.test_case "basic" `Quick test_basic_parse;
          Alcotest.test_case "no demands" `Quick test_no_demands_no_matrix;
          Alcotest.test_case "comments/whitespace" `Quick
            test_comments_and_whitespace;
          Alcotest.test_case "error lines" `Quick test_error_line_numbers;
          parse_fails "directive before nodes" "edge 0 1 5\nnodes 2\n";
          parse_fails "duplicate nodes" "nodes 2\nnodes 3\n";
          parse_fails "node out of range" "nodes 2\nedge 0 5 1\n";
          parse_fails "duplicate link" "nodes 2\nlink 0 1 5\nlink 0 1 6\n";
          parse_fails "edge conflicts with link" "nodes 2\nlink 0 1 5\nedge 0 1 5\n";
          parse_fails "self demand" "nodes 2\nedge 0 1 5\ndemand 1 1 2\n";
          parse_fails "negative demand" "nodes 2\nedge 0 1 5\ndemand 0 1 -2\n";
          parse_fails "garbage int" "nodes two\n" ] );
      ( "roundtrip",
        [ Alcotest.test_case "builtin networks" `Quick test_roundtrip_builtin;
          Alcotest.test_case "asymmetric" `Quick test_roundtrip_asymmetric;
          Alcotest.test_case "file io" `Quick test_of_file;
          QCheck_alcotest.to_alcotest prop_random_graph_roundtrip ] ) ]
