(** Plain-text network specifications.

    A line-oriented format for loading user topologies and traffic
    matrices into the CLI and examples:

    {v
    # comment (blank lines ignored)
    nodes 4
    label 0 Seattle
    edge 0 1 100        # a pair of opposite links, capacity 100 each
    link 2 3 50         # a single directed link
    demand 0 1 12.5     # Erlangs offered from 0 to 1
    v}

    [nodes] must come before any other directive.  Labels, links/edges
    and demands may appear in any order after it.  Duplicate links (in
    the same direction) and duplicate demands are errors. *)

open Arnet_topology
open Arnet_traffic

type t = {
  graph : Graph.t;
  matrix : Matrix.t option;  (** present iff any [demand] line appeared *)
}

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> t
(** @raise Sys_error when unreadable, [Parse_error] when malformed. *)

val to_string : ?matrix:Matrix.t -> Graph.t -> string
(** Render a spec that {!of_string} parses back to an equal network:
    opposite equal-capacity link pairs become [edge] lines, the rest
    [link] lines; positive demands become [demand] lines. *)

val roundtrip_ok : ?matrix:Matrix.t -> Graph.t -> bool
(** Structural equality of graph (and matrix) after a
    render-parse cycle — used by tests. *)
