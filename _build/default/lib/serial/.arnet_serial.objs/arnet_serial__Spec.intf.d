lib/serial/spec.mli: Arnet_topology Arnet_traffic Graph Matrix
