lib/serial/spec.ml: Arnet_topology Arnet_traffic Array Buffer Graph Hashtbl Link List Matrix Printf String
