open Arnet_topology
open Arnet_traffic

type t = { graph : Graph.t; matrix : Matrix.t option }

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type accum = {
  mutable nodes : int option;
  mutable labels : (int * string) list;
  mutable links : (int * int * int) list;  (* src, dst, capacity *)
  mutable demands : ((int * int) * float) list;
}

let parse_int line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected an integer %s, got %S" what s)

let parse_float line what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line (Printf.sprintf "expected a number %s, got %S" what s)

let node_in_range acc line v =
  match acc.nodes with
  | None -> fail line "directive before 'nodes'"
  | Some n ->
    if v < 0 || v >= n then
      fail line (Printf.sprintf "node %d out of range [0, %d)" v n);
    v

let add_link acc line src dst capacity =
  if src = dst then fail line "self-loop link";
  if capacity < 0 then fail line "negative capacity";
  if List.exists (fun (s, d, _) -> s = src && d = dst) acc.links then
    fail line (Printf.sprintf "duplicate link %d->%d" src dst);
  acc.links <- (src, dst, capacity) :: acc.links

let handle_line acc lineno raw =
  let stripped =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let words =
    String.split_on_char ' ' (String.trim stripped)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | [ "nodes"; n ] ->
    if acc.nodes <> None then fail lineno "duplicate 'nodes'";
    let n = parse_int lineno "node count" n in
    if n < 2 then fail lineno "need at least 2 nodes";
    acc.nodes <- Some n
  | "nodes" :: _ -> fail lineno "usage: nodes N"
  | [ "label"; v; name ] ->
    let v = node_in_range acc lineno (parse_int lineno "node" v) in
    if List.mem_assoc v acc.labels then fail lineno "duplicate label";
    acc.labels <- (v, name) :: acc.labels
  | "label" :: _ -> fail lineno "usage: label NODE NAME"
  | [ "link"; src; dst; cap ] ->
    let src = node_in_range acc lineno (parse_int lineno "src" src) in
    let dst = node_in_range acc lineno (parse_int lineno "dst" dst) in
    add_link acc lineno src dst (parse_int lineno "capacity" cap)
  | "link" :: _ -> fail lineno "usage: link SRC DST CAPACITY"
  | [ "edge"; a; b; cap ] ->
    let a = node_in_range acc lineno (parse_int lineno "endpoint" a) in
    let b = node_in_range acc lineno (parse_int lineno "endpoint" b) in
    let cap = parse_int lineno "capacity" cap in
    add_link acc lineno a b cap;
    add_link acc lineno b a cap
  | "edge" :: _ -> fail lineno "usage: edge A B CAPACITY"
  | [ "demand"; src; dst; erlangs ] ->
    let src = node_in_range acc lineno (parse_int lineno "src" src) in
    let dst = node_in_range acc lineno (parse_int lineno "dst" dst) in
    if src = dst then fail lineno "demand to self";
    let d = parse_float lineno "demand" erlangs in
    if d < 0. then fail lineno "negative demand";
    if List.mem_assoc (src, dst) acc.demands then
      fail lineno (Printf.sprintf "duplicate demand %d->%d" src dst);
    acc.demands <- ((src, dst), d) :: acc.demands
  | "demand" :: _ -> fail lineno "usage: demand SRC DST ERLANGS"
  | word :: _ -> fail lineno (Printf.sprintf "unknown directive %S" word)

let of_string text =
  let acc = { nodes = None; labels = []; links = []; demands = [] } in
  List.iteri
    (fun i line -> handle_line acc (i + 1) line)
    (String.split_on_char '\n' text);
  match acc.nodes with
  | None -> fail 0 "missing 'nodes' directive"
  | Some n ->
    let labels =
      Array.init n (fun v ->
          match List.assoc_opt v acc.labels with
          | Some name -> name
          | None -> string_of_int v)
    in
    let links =
      List.rev acc.links
      |> List.mapi (fun id (src, dst, capacity) ->
             Link.make ~id ~src ~dst ~capacity)
    in
    let graph = Graph.create ~labels ~nodes:n links in
    let matrix =
      if acc.demands = [] then None
      else
        Some
          (Matrix.make ~nodes:n (fun i j ->
               match List.assoc_opt (i, j) acc.demands with
               | Some d -> d
               | None -> 0.))
    in
    { graph; matrix }

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let to_string ?matrix graph =
  let buf = Buffer.create 256 in
  let n = Graph.node_count graph in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" n);
  for v = 0 to n - 1 do
    let label = Graph.label graph v in
    if label <> string_of_int v then
      Buffer.add_string buf (Printf.sprintf "label %d %s\n" v label)
  done;
  let emitted = Hashtbl.create 16 in
  Graph.iter_links
    (fun l ->
      if not (Hashtbl.mem emitted l.Link.id) then begin
        let twin =
          Graph.find_link graph ~src:l.Link.dst ~dst:l.Link.src
        in
        match twin with
        | Some r when r.Link.capacity = l.Link.capacity ->
          Hashtbl.add emitted l.Link.id ();
          Hashtbl.add emitted r.Link.id ();
          Buffer.add_string buf
            (Printf.sprintf "edge %d %d %d\n" l.Link.src l.Link.dst
               l.Link.capacity)
        | _ ->
          Hashtbl.add emitted l.Link.id ();
          Buffer.add_string buf
            (Printf.sprintf "link %d %d %d\n" l.Link.src l.Link.dst
               l.Link.capacity)
      end)
    graph;
  (match matrix with
  | None -> ()
  | Some m ->
    Matrix.iter_demands m (fun i j d ->
        Buffer.add_string buf (Printf.sprintf "demand %d %d %.12g\n" i j d)));
  Buffer.contents buf

let graphs_equal a b =
  Graph.node_count a = Graph.node_count b
  && Graph.link_count a = Graph.link_count b
  && Graph.fold_links
       (fun l ok ->
         ok
         &&
         match Graph.find_link b ~src:l.Link.src ~dst:l.Link.dst with
         | Some r -> r.Link.capacity = l.Link.capacity
         | None -> false)
       a true
  && List.for_all
       (fun v -> Graph.label a v = Graph.label b v)
       (List.init (Graph.node_count a) (fun i -> i))

let roundtrip_ok ?matrix graph =
  let { graph = graph'; matrix = matrix' } =
    of_string (to_string ?matrix graph)
  in
  graphs_equal graph graph'
  &&
  match (matrix, matrix') with
  | None, None -> true
  | Some m, Some m' -> Matrix.max_abs_diff m m' < 1e-9
  | Some m, None -> Matrix.total m = 0.
  | None, Some _ -> false
