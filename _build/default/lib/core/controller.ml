open Arnet_paths
open Arnet_sim

type primary_choice =
  | Table
  | Sampled of (src:int -> dst:int -> u:float -> Path.t option)

let primary_for routes choice (call : Trace.call) =
  let src = call.Trace.src and dst = call.Trace.dst in
  match choice with
  | Table ->
    if Route_table.has_route routes ~src ~dst then
      Some (Route_table.primary routes ~src ~dst)
    else None
  | Sampled f -> f ~src ~dst ~u:call.Trace.u

let decide ~routes ~admission ~choice ~allow_alternates ~occupancy ~call =
  match primary_for routes choice call with
  | None -> Engine.Lost
  | Some primary ->
    if Admission.path_admits_primary admission ~occupancy primary then
      Engine.Routed primary
    else if not allow_alternates then Engine.Lost
    else begin
      let src = call.Trace.src and dst = call.Trace.dst in
      let alternates =
        Route_table.alternates_excluding routes ~src ~dst primary
      in
      let admissible p =
        Admission.path_admits_alternate admission ~occupancy p
      in
      match List.find_opt admissible alternates with
      | Some p -> Engine.Routed p
      | None -> Engine.Lost
    end
