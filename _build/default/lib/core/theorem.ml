open Arnet_erlang

let chain ~primary ~overflow ~capacity ~reserve =
  Birth_death.protected_link ~primary ~overflow ~capacity ~reserve

let extra_loss_exact ~primary ~overflow ~capacity ~reserve ~state =
  if state < 0 || state > capacity - reserve - 1 then
    invalid_arg "Theorem.extra_loss_exact: state does not admit alternates";
  let c = chain ~primary ~overflow ~capacity ~reserve in
  let tau = Birth_death.expected_passage_time c state in
  tau *. Birth_death.time_congestion c *. primary

let extra_loss_worst_state ~primary ~overflow ~capacity ~reserve =
  let worst = ref 0. in
  for s = 0 to capacity - reserve - 1 do
    let l = extra_loss_exact ~primary ~overflow ~capacity ~reserve ~state:s in
    if l > !worst then worst := l
  done;
  !worst

let bound ~primary ~capacity ~reserve =
  Erlang_b.blocking_ratio ~offered:primary ~capacity ~reserve

let verify ~primary ~overflow ~capacity ~reserve =
  let lhs = extra_loss_worst_state ~primary ~overflow ~capacity ~reserve in
  let rhs = bound ~primary ~capacity ~reserve in
  lhs <= rhs +. 1e-9
