(** Mean-field analysis of the avalanche the paper controls against.

    Section 1: "uncontrolled alternate routing can actually do much
    worse than state-independent routing when the load is beyond a
    certain critical load ... an avalanche effect drives the network
    into a high-blocking operating region", citing the bistability
    analyses of Akinpelu [1] and Gibbens-Hunt-Kelly [10].

    The classical symmetric model: a fully-connected network, direct
    traffic [a] Erlangs per link, and calls blocked on their direct link
    trying one two-link alternate through a random intermediate.  Under
    the independence (mean-field) approximation each link is a
    birth-death chain fed by its direct stream (admitted below [C]) and
    by an overflow stream (admitted below [C - r]).  A blocked call
    makes up to [attempts] two-link alternate tries, stopping at the
    first success; each try succeeds with probability [(1 - B_o)^2]
    under the independence assumption, so the per-link overflow rate is
    [2 a B_d E(tries) (1 - B_o)] with
    [E(tries) = (1 - (1-p)^M) / p], [p = (1 - B_o)^2].  A consistent operating point is a fixed
    point of that map; beyond a critical load the uncontrolled ([r = 0])
    map has two stable fixed points — a low-blocking one reached from a
    cold (idle) network and a high-blocking one reached from a hot
    (congested) network — and sufficient state protection removes the
    high one.  This module computes those fixed points; the
    [ext_bistability] bench section pairs them with a call-by-call
    simulation of the hysteresis. *)

type fixed_point = {
  direct_blocking : float;  (** probability a direct call is blocked *)
  overflow_blocking : float;  (** probability the link refuses an
                                  alternate call (occupancy >= C - r) *)
  overflow_rate : float;  (** self-consistent alternate arrival rate *)
  network_blocking : float;
      (** fraction of calls lost end-to-end: blocked on direct and on
          the attempted alternate *)
  iterations : int;
}

val fixed_point_from :
  ?tolerance:float -> ?max_iterations:int -> ?attempts:int ->
  offered:float -> capacity:int -> reserve:int ->
  [ `Cold | `Hot ] ->
  fixed_point
(** Iterate the mean-field map from an idle ([`Cold]) or saturated
    ([`Hot]) initial state.  [attempts] defaults to 10 (a network the
    size of the NSFNet model, trying every two-link alternate).
    @raise Invalid_argument for nonpositive load, capacity < 1, or
    reserve outside [0, capacity), or if the iteration fails to
    converge. *)

val is_bistable :
  ?gap:float -> ?attempts:int ->
  offered:float -> capacity:int -> reserve:int -> unit -> bool
(** Whether the cold- and hot-start fixed points differ by more than
    [gap] (default 0.01) in network blocking. *)

val hysteresis_scan :
  ?attempts:int -> offered:float list -> capacity:int -> reserve:int ->
  unit -> (float * fixed_point * fixed_point) list
(** Per offered load: [(load, cold fixed point, hot fixed point)]. *)

val critical_load :
  ?lo:float -> ?hi:float -> ?precision:float -> ?attempts:int ->
  capacity:int -> reserve:int -> unit -> float option
(** Smallest load in [\[lo, hi\]] (defaults: 0.5C .. 1.2C, refined to
    [precision], default 0.05 Erlangs) at which the system is bistable;
    [None] if it never is on that range (e.g. with sufficient
    reservation).  Bistability holds on a *band* of loads, so the range
    is scanned, not bisected. *)
