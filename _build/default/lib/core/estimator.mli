(** On-line estimation of a link's primary traffic demand.

    Section 1: each link's protection threshold "is based on its current
    estimate of the resource demand on the link due to calls whose
    primary path traverses that link.  The estimate can be found from
    the primary call set-ups that fly past the link" — the paper leaves
    the estimation procedure unspecified, and its simulations assume
    Lambda is known a priori.  This module supplies the missing piece: a
    windowed rate estimator with exponential smoothing.  With unit-mean
    holding times the primary set-up arrival rate *is* the demand in
    Erlangs, so no holding-time bookkeeping is needed; a mean-holding
    scale factor covers the general case.

    The companion experiment (bench section [exp_robustness]) confirms
    the property the paper relies on (Key [21]): protection levels are
    robust to estimation error, so a simple estimator suffices. *)

type t

val create :
  ?window:float -> ?smoothing:float -> ?mean_holding:float ->
  ?initial:float -> unit -> t
(** [create ()] — a fresh estimator.  [window] (default 5 time units) is
    the counting interval; at each boundary the finished window's rate
    enters an exponentially-weighted moving average with weight
    [smoothing] (default 0.3).  [initial] (default 0) seeds the average;
    pass a planning estimate to avoid a cold start.
    @raise Invalid_argument for nonpositive window/mean_holding or
    smoothing outside (0, 1]. *)

val observe : t -> now:float -> unit
(** Record one primary call set-up passing the link at time [now].
    Times must be nondecreasing across calls.
    @raise Invalid_argument if time runs backwards. *)

val estimate : t -> now:float -> float
(** Current demand estimate in Erlangs (closing any windows that have
    elapsed by [now]).  Never negative. *)

val observations : t -> int
(** Total set-ups recorded. *)
