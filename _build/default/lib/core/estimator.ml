type t = {
  window : float;
  smoothing : float;
  mean_holding : float;
  mutable window_start : float;
  mutable count : int;
  mutable ewma : float;
  mutable observations : int;
  mutable last_time : float;
}

let create ?(window = 5.) ?(smoothing = 0.3) ?(mean_holding = 1.)
    ?(initial = 0.) () =
  if window <= 0. || not (Float.is_finite window) then
    invalid_arg "Estimator.create: bad window";
  if smoothing <= 0. || smoothing > 1. then
    invalid_arg "Estimator.create: smoothing outside (0, 1]";
  if mean_holding <= 0. then invalid_arg "Estimator.create: bad mean_holding";
  if initial < 0. then invalid_arg "Estimator.create: negative initial";
  { window;
    smoothing;
    mean_holding;
    window_start = 0.;
    count = 0;
    ewma = initial;
    observations = 0;
    last_time = 0. }

(* fold every window that has fully elapsed by [now] into the average *)
let roll t ~now =
  while now >= t.window_start +. t.window do
    let rate = float_of_int t.count /. t.window in
    t.ewma <- (t.smoothing *. rate) +. ((1. -. t.smoothing) *. t.ewma);
    t.count <- 0;
    t.window_start <- t.window_start +. t.window
  done

let observe t ~now =
  if now < t.last_time then invalid_arg "Estimator.observe: time ran backwards";
  t.last_time <- now;
  roll t ~now;
  t.count <- t.count + 1;
  t.observations <- t.observations + 1

let estimate t ~now =
  if now >= t.last_time then begin
    t.last_time <- now;
    roll t ~now
  end;
  t.ewma *. t.mean_holding

let observations t = t.observations
