(** Fixed-point (reduced-load) approximation of the controlled scheme.

    The classical Erlang fixed point covers fixed-path routing; this
    module extends it to the paper's two-tier scheme on a general mesh.
    Under link-independence assumptions:

    - a pair's primary path blocks with
      [1 - prod (1 - Bp_k)] over its links;
    - blocked calls try the stored alternates in order, each attempt
      succeeding with [prod (1 - Ba_k)] over the alternate's links;
    - every link is an exact protected birth-death chain
      ({!Arnet_erlang.Birth_death.protected_link}) fed by its thinned
      primary stream and the overflow stream implied by the traffic that
      reaches it, giving back [Bp_k] (probability of a full link) and
      [Ba_k] (probability of occupancy in the protected band);

    iterated to a fixed point with damping.  The approximation lets the
    operating point of the controlled scheme be estimated without
    simulation; the [ext_analytic] bench section compares it against the
    call-by-call simulator across loads. *)

open Arnet_paths
open Arnet_traffic

type t = {
  primary_blocking : float array;  (** per link, [P(occupancy = C)] *)
  alternate_blocking : float array;
      (** per link, [P(occupancy >= C - r)] *)
  network_blocking : float;  (** demand-weighted end-to-end loss *)
  iterations : int;
  converged : bool;
}

val solve :
  ?tolerance:float ->
  ?max_iterations:int ->
  ?damping:float ->
  routes:Route_table.t ->
  reserves:int array ->
  Matrix.t ->
  t
(** [solve ~routes ~reserves matrix] — pass all-zero reserves for the
    uncontrolled scheme, or reserves of [capacity] to recover the pure
    single-path fixed point.  Damping defaults to 0.5; tolerance [1e-8]
    on the largest per-link change; cap 2000 iterations ([converged]
    reports whether the tolerance was met).
    @raise Invalid_argument on size mismatches or bad parameters. *)

val pair_blocking :
  t -> routes:Route_table.t -> src:int -> dst:int -> float
(** End-to-end loss probability of one pair at the fixed point ([1.0]
    for unrouted pairs). *)
