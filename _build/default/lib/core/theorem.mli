(** Numerical verification of Theorem 1.

    [L] — the expected increase in lost primary calls caused by accepting
    one alternate-routed call on a protected link — has the exact value
    (Equation 3)

    {v L(s) = E[tau_s] * B(lambda_vec, C) * nu v}

    where [tau_s] is the first-passage time from the acceptance state [s]
    to [s + 1] in the link's full birth-death chain (primary rate [nu]
    plus state-dependent overflow rates, protection at [C - r]).
    Theorem 1 asserts [L(s) <= B(nu, C) / B(nu, C - r)] for every
    admissible [s] and *any* overflow pattern.  These helpers compute
    both sides so tests and benches can check the inequality across
    parameter sweeps. *)

val extra_loss_exact :
  primary:float ->
  overflow:(int -> float) ->
  capacity:int ->
  reserve:int ->
  state:int ->
  float
(** [L(state)] for an alternate call accepted while the link holds
    [state] calls ([state <= capacity - reserve - 1], the only states
    where alternates are admitted).
    @raise Invalid_argument outside that range. *)

val extra_loss_worst_state :
  primary:float -> overflow:(int -> float) -> capacity:int -> reserve:int ->
  float
(** Maximum of {!extra_loss_exact} over all admissible states. *)

val bound : primary:float -> capacity:int -> reserve:int -> float
(** The right-hand side of Theorem 1 (does not depend on the overflow
    rates — that is the theorem's point). *)

val verify :
  primary:float -> overflow:(int -> float) -> capacity:int -> reserve:int ->
  bool
(** [extra_loss_worst_state <= bound], with a tiny numerical slack. *)
