open Arnet_erlang
open Arnet_paths
open Arnet_traffic

let bound ~offered ~capacity ~reserve =
  Erlang_b.blocking_ratio ~offered ~capacity ~reserve

let level ~offered ~capacity ~h =
  if h < 1 then invalid_arg "Protection.level: h < 1";
  if capacity < 1 then invalid_arg "Protection.level: capacity < 1";
  let target = 1. /. float_of_int h in
  (* B(a,c)/B(a,c-r) = y_{c-r}/y_c is nonincreasing in r: binary search
     would do, but c is small and the log table gives all values at
     once. *)
  let ly = Erlang_b.log_inverse_table ~offered ~capacity in
  let log_target = log target in
  let rec search r =
    if r > capacity then capacity
    else if ly.(capacity - r) -. ly.(capacity) <= log_target then r
    else search (r + 1)
  in
  search 0

let levels_of_loads ~capacities ~loads ~h =
  if Array.length capacities <> Array.length loads then
    invalid_arg "Protection.levels_of_loads: length mismatch";
  Array.mapi
    (fun k c ->
      if loads.(k) <= 0. then 0 else level ~offered:loads.(k) ~capacity:c ~h)
    capacities

let levels routes matrix ~h =
  let g = Route_table.graph routes in
  let loads = Loads.primary_link_loads routes matrix in
  let capacities =
    Array.map (fun (l : Arnet_topology.Link.t) -> l.capacity)
      (Arnet_topology.Graph.links g)
  in
  levels_of_loads ~capacities ~loads ~h

let sweep ~capacity ~h ~loads =
  List.map (fun offered -> (offered, level ~offered ~capacity ~h)) loads

let per_link_h routes =
  let g = Route_table.graph routes in
  let n = Arnet_topology.Graph.node_count g in
  let hs = Array.make (Arnet_topology.Graph.link_count g) 1 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        List.iter
          (fun p ->
            let hops = Path.hops p in
            List.iter
              (fun k -> if hops > hs.(k) then hs.(k) <- hops)
              (Path.link_ids p))
          (Route_table.alternates routes ~src ~dst)
    done
  done;
  hs

let levels_per_link_h routes matrix =
  let g = Route_table.graph routes in
  let loads = Loads.primary_link_loads routes matrix in
  let capacities =
    Array.map (fun (l : Arnet_topology.Link.t) -> l.capacity)
      (Arnet_topology.Graph.links g)
  in
  let hs = per_link_h routes in
  Array.mapi
    (fun k c ->
      if loads.(k) <= 0. then 0
      else level ~offered:loads.(k) ~capacity:c ~h:hs.(k))
    capacities

let path_guarantee ~capacities ~loads ~reserves ~link_ids =
  List.fold_left
    (fun acc k ->
      if loads.(k) <= 0. then acc
      else
        acc
        +. bound ~offered:loads.(k) ~capacity:capacities.(k)
             ~reserve:reserves.(k))
    0. link_ids
