(** State-protection (trunk-reservation) levels — Section 3.1.

    A link with capacity [C], estimated primary demand [Lambda] and
    protection level [r] refuses alternate-routed calls in its top
    [r + 1] states.  Theorem 1 bounds the primary calls lost per accepted
    alternate call by [B(Lambda, C) / B(Lambda, C - r)]; requiring that
    bound [<= 1/H] on every link of an alternate path of at most [H]
    hops makes the path's total expected damage at most 1 — accepting
    the call can only improve on single-path routing.  The scheme
    therefore picks the *smallest* such [r]: maximally permissive
    alternate routing that still carries the guarantee. *)

open Arnet_paths
open Arnet_traffic

val level : offered:float -> capacity:int -> h:int -> int
(** [level ~offered ~capacity ~h] is the smallest [r] with
    [B(offered, capacity) / B(offered, capacity - r) <= 1 / h], or
    [capacity] when no [r] satisfies it (protecting every state, i.e.
    never accepting alternate calls — the fate of overloaded links such
    as 10->11 in Table 1).  [h = 1] yields 0: a one-hop alternate call
    is as cheap as a primary.
    @raise Invalid_argument if [h < 1], [capacity < 1] or
    [offered <= 0]. *)

val bound : offered:float -> capacity:int -> reserve:int -> float
(** The Theorem-1 bound [B(offered, capacity) /
    B(offered, capacity - reserve)] on expected primary losses per
    accepted alternate call. *)

val levels_of_loads : capacities:int array -> loads:float array -> h:int -> int array
(** Per-link levels; a link with zero (or negative) estimated load gets
    level 0 — it carries no primary traffic worth protecting. *)

val levels : Route_table.t -> Matrix.t -> h:int -> int array
(** Levels for every link of the route table's graph, with [Lambda]
    computed from the matrix by Equation 1 (the simulator's stance that
    links know their primary demand a priori, Section 4). *)

val sweep : capacity:int -> h:int -> loads:float list -> (float * int) list
(** [(load, level)] pairs — the curves of Figure 2. *)

val per_link_h : Route_table.t -> int array
(** Footnote 5's refinement: [H^k], the longest alternate path that
    actually traverses link [k] under the given route table.  Links that
    no alternate crosses get 1 (the loosest requirement).  Protecting
    link [k] for [H^k] instead of the global [H] keeps the Section 3.1
    guarantee: every link on an alternate path of length [l] has
    [H^k >= l] (that path itself crosses it), so the path's summed bound
    is at most [l * (1/l) = 1] — while links that only short alternates
    use get smaller [r], i.e. freer alternate routing. *)

val levels_per_link_h :
  Route_table.t -> Matrix.t -> int array
(** Levels using [H^k] from {!per_link_h} instead of a global [H]. *)

val path_guarantee :
  capacities:int array -> loads:float array -> reserves:int array ->
  link_ids:int list -> float
(** Sum of per-link Theorem-1 bounds along a path: the guaranteed upper
    bound on primary calls displaced by routing one call there.  The
    scheme's invariant is that this is [<= 1] for every admissible
    alternate path (links with zero load contribute zero — no primary
    calls exist to displace). *)
