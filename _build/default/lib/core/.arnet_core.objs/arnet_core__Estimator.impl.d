lib/core/estimator.ml: Float
