lib/core/bistability.mli:
