lib/core/theorem.ml: Arnet_erlang Birth_death Erlang_b
