lib/core/controller.ml: Admission Arnet_paths Arnet_sim Engine List Path Route_table Trace
