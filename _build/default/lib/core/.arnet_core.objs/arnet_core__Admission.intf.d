lib/core/admission.mli: Arnet_paths Path
