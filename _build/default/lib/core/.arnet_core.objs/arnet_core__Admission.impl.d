lib/core/admission.ml: Arnet_paths Array Path Stdlib
