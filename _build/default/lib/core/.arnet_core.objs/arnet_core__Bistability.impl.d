lib/core/bistability.ml: Arnet_erlang Array Birth_death Float List
