lib/core/scheme.mli: Arnet_paths Arnet_sim Arnet_traffic Controller Engine Matrix Route_table
