lib/core/estimator.mli:
