lib/core/approximation.ml: Arnet_erlang Arnet_paths Arnet_topology Arnet_traffic Array Birth_death Float Graph Link List Matrix Path Route_table
