lib/core/protection.mli: Arnet_paths Arnet_traffic Matrix Route_table
