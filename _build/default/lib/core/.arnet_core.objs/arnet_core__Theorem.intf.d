lib/core/theorem.mli:
