lib/core/controller.mli: Admission Arnet_paths Arnet_sim Engine Path Route_table Trace
