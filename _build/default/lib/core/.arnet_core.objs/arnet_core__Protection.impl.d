lib/core/protection.ml: Arnet_erlang Arnet_paths Arnet_topology Arnet_traffic Array Erlang_b List Loads Path Route_table
