lib/core/approximation.mli: Arnet_paths Arnet_traffic Matrix Route_table
