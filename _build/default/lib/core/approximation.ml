open Arnet_topology
open Arnet_paths
open Arnet_erlang
open Arnet_traffic

type t = {
  primary_blocking : float array;
  alternate_blocking : float array;
  network_blocking : float;
  iterations : int;
  converged : bool;
}

let path_pass blocking (p : Path.t) =
  Array.fold_left (fun acc k -> acc *. (1. -. blocking.(k))) 1. p.Path.link_ids

(* thinned load contributed to link k by a stream of rate [rate] offered
   to path p: the stream reaches/holds k only if every *other* link
   admits it *)
let add_thinned loads blocking rate (p : Path.t) =
  Array.iter
    (fun k ->
      let pass_others =
        Array.fold_left
          (fun acc k' -> if k' = k then acc else acc *. (1. -. blocking.(k')))
          1. p.Path.link_ids
      in
      loads.(k) <- loads.(k) +. (rate *. pass_others))
    p.Path.link_ids

let solve ?(tolerance = 1e-8) ?(max_iterations = 2000) ?(damping = 0.5)
    ~routes ~reserves matrix =
  if damping <= 0. || damping > 1. then
    invalid_arg "Approximation.solve: damping outside (0, 1]";
  let g = Route_table.graph routes in
  let m = Graph.link_count g in
  if Array.length reserves <> m then
    invalid_arg "Approximation.solve: reserves length mismatch";
  if Matrix.nodes matrix <> Graph.node_count g then
    invalid_arg "Approximation.solve: matrix size mismatch";
  let capacities =
    Array.map (fun (l : Link.t) -> l.capacity) (Graph.links g)
  in
  Array.iteri
    (fun k r ->
      if r < 0 || r > capacities.(k) then
        invalid_arg "Approximation.solve: reserve out of range")
    reserves;
  (* pair data: demand, primary, ordered alternates *)
  let pairs = ref [] in
  Matrix.iter_demands matrix (fun src dst demand ->
      if Route_table.has_route routes ~src ~dst then begin
        let primary = Route_table.primary routes ~src ~dst in
        let alternates =
          Route_table.alternates_excluding routes ~src ~dst primary
        in
        pairs := (demand, primary, alternates) :: !pairs
      end);
  let pairs = List.rev !pairs in
  let bp = Array.make m 0. and ba = Array.make m 0. in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    (* implied offered loads under the current blocking estimates *)
    let primary_loads = Array.make m 0. in
    let overflow_loads = Array.make m 0. in
    List.iter
      (fun (demand, primary, alternates) ->
        add_thinned primary_loads bp demand primary;
        let blocked = demand *. (1. -. path_pass bp primary) in
        let reach = ref blocked in
        List.iter
          (fun alt ->
            if !reach > 1e-12 then begin
              add_thinned overflow_loads ba !reach alt;
              reach := !reach *. (1. -. path_pass ba alt)
            end)
          alternates)
      pairs;
    (* exact protected chain per link *)
    let delta = ref 0. in
    for k = 0 to m - 1 do
      let capacity = capacities.(k) in
      let nu = Float.max primary_loads.(k) 1e-9 in
      let o = Float.max overflow_loads.(k) 0. in
      let new_bp, new_ba =
        if capacity = 0 then (1., 1.)
        else begin
          let chain =
            Birth_death.protected_link ~primary:nu
              ~overflow:(fun _ -> o +. 1e-12)
              ~capacity ~reserve:reserves.(k)
          in
          let pi = Birth_death.stationary chain in
          let full = pi.(capacity) in
          let protected_band = ref 0. in
          for s = capacity - reserves.(k) to capacity do
            protected_band := !protected_band +. pi.(s)
          done;
          (full, !protected_band)
        end
      in
      delta := Float.max !delta (Float.abs (new_bp -. bp.(k)));
      delta := Float.max !delta (Float.abs (new_ba -. ba.(k)));
      bp.(k) <- ((1. -. damping) *. bp.(k)) +. (damping *. new_bp);
      ba.(k) <- ((1. -. damping) *. ba.(k)) +. (damping *. new_ba)
    done;
    if !delta <= tolerance then converged := true
  done;
  (* end-to-end loss *)
  let lost = ref 0. and total = ref 0. in
  List.iter
    (fun (demand, primary, alternates) ->
      total := !total +. demand;
      let blocked = ref (demand *. (1. -. path_pass bp primary)) in
      List.iter
        (fun alt -> blocked := !blocked *. (1. -. path_pass ba alt))
        alternates;
      lost := !lost +. !blocked)
    pairs;
  (* demands between unrouted pairs are wholly lost *)
  Matrix.iter_demands matrix (fun src dst demand ->
      if not (Route_table.has_route routes ~src ~dst) then begin
        total := !total +. demand;
        lost := !lost +. demand
      end);
  { primary_blocking = bp;
    alternate_blocking = ba;
    network_blocking = (if !total = 0. then 0. else !lost /. !total);
    iterations = !iterations;
    converged = !converged }

let pair_blocking t ~routes ~src ~dst =
  if not (Route_table.has_route routes ~src ~dst) then 1.
  else begin
    let primary = Route_table.primary routes ~src ~dst in
    let blocked = ref (1. -. path_pass t.primary_blocking primary) in
    List.iter
      (fun alt ->
        blocked := !blocked *. (1. -. path_pass t.alternate_blocking alt))
      (Route_table.alternates_excluding routes ~src ~dst primary);
    !blocked
  end
