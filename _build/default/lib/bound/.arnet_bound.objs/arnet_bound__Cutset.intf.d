lib/bound/cutset.mli: Arnet_topology Arnet_traffic Graph Matrix
