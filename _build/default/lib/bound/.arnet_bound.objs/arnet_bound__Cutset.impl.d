lib/bound/cutset.ml: Arnet_topology Arnet_traffic Array Graph Link Matrix
