lib/bound/erlang_bound.mli: Arnet_topology Arnet_traffic Graph Matrix
