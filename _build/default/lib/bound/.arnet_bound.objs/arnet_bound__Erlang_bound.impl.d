lib/bound/erlang_bound.ml: Arnet_erlang Arnet_topology Arnet_traffic Array Cutset Erlang_b Graph Matrix
