open Arnet_topology
open Arnet_traffic
open Arnet_erlang

let side_blocking { Cutset.traffic; capacity } =
  if traffic <= 0. then 0.
  else if capacity = 0 then 1.
  else Erlang_b.blocking ~offered:traffic ~capacity

let of_cut g matrix ~members =
  let total = Matrix.total matrix in
  if total <= 0. then invalid_arg "Erlang_bound.of_cut: empty matrix";
  let cut = Cutset.evaluate g matrix ~members in
  let share side = side.Cutset.traffic /. total in
  (share cut.Cutset.forward *. side_blocking cut.Cutset.forward)
  +. (share cut.Cutset.backward *. side_blocking cut.Cutset.backward)

let compute_with_argmax g matrix =
  if Matrix.total matrix <= 0. then
    invalid_arg "Erlang_bound.compute: empty matrix";
  Cutset.fold_cuts g ~init:(0., Array.make (Graph.node_count g) false)
    ~f:(fun (best, argmax) members ->
      let b = of_cut g matrix ~members in
      if b > best then (b, Array.copy members) else (best, argmax))

let compute g matrix = fst (compute_with_argmax g matrix)
