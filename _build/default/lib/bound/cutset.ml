open Arnet_topology
open Arnet_traffic

type side = { traffic : float; capacity : int }

type t = { members : bool array; forward : side; backward : side }

let evaluate g matrix ~members =
  let n = Graph.node_count g in
  if Array.length members <> n then invalid_arg "Cutset.evaluate: bad size";
  if Matrix.nodes matrix <> n then
    invalid_arg "Cutset.evaluate: matrix size mismatch";
  let inside = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 members in
  if inside = 0 || inside = n then
    invalid_arg "Cutset.evaluate: trivial cut";
  let fwd_traffic = ref 0. and bwd_traffic = ref 0. in
  Matrix.iter_demands matrix (fun i j d ->
      match members.(i), members.(j) with
      | true, false -> fwd_traffic := !fwd_traffic +. d
      | false, true -> bwd_traffic := !bwd_traffic +. d
      | true, true | false, false -> ());
  let fwd_cap = ref 0 and bwd_cap = ref 0 in
  Graph.iter_links
    (fun l ->
      match members.(l.Link.src), members.(l.Link.dst) with
      | true, false -> fwd_cap := !fwd_cap + l.Link.capacity
      | false, true -> bwd_cap := !bwd_cap + l.Link.capacity
      | true, true | false, false -> ())
    g;
  { members = Array.copy members;
    forward = { traffic = !fwd_traffic; capacity = !fwd_cap };
    backward = { traffic = !bwd_traffic; capacity = !bwd_cap } }

let cut_count g = (1 lsl Graph.node_count g) - 2

let fold_cuts g ~init ~f =
  let n = Graph.node_count g in
  if n > 24 then invalid_arg "Cutset.fold_cuts: too many nodes";
  let members = Array.make n false in
  let acc = ref init in
  for mask = 1 to (1 lsl n) - 2 do
    for v = 0 to n - 1 do
      members.(v) <- mask land (1 lsl v) <> 0
    done;
    acc := f !acc members
  done;
  !acc
