(** Node cut sets and the traffic/capacity that crosses them.

    A cut is a nonempty proper subset [S] of nodes.  The Erlang bound of
    Section 4 maximizes over all cuts, which is feasible exactly for the
    paper's network sizes (2^12 - 2 cuts for NSFNet). *)

open Arnet_topology
open Arnet_traffic

type side = { traffic : float; capacity : int }
(** Aggregate demand (Erlangs) and link capacity crossing a cut in one
    direction. *)

type t = {
  members : bool array;  (** [members.(v)] iff node [v] is in [S] *)
  forward : side;  (** from [S] to its complement *)
  backward : side;  (** from the complement into [S] *)
}

val evaluate : Graph.t -> Matrix.t -> members:bool array -> t
(** Demand and capacity across one cut.
    @raise Invalid_argument when sizes disagree or the cut is trivial
    (empty or full). *)

val fold_cuts : Graph.t -> init:'a -> f:('a -> bool array -> 'a) -> 'a
(** Applies [f] to every nonempty proper subset containing node 0 being
    optional — i.e. all [2^n - 2] cuts are visited exactly once.  The
    [bool array] is reused between calls; copy it if you keep it.
    @raise Invalid_argument when the graph has more than 24 nodes
    (enumeration would be unreasonable). *)

val cut_count : Graph.t -> int
