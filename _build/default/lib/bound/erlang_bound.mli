(** The Erlang lower bound on average network blocking (Section 4).

    For each cut [S], all traffic crossing the cut in one direction must
    share the total capacity crossing in that direction, so even perfect
    routing (with re-packing) cannot block less than an Erlang link of
    that aggregate capacity fed by that aggregate demand.  Weighted by
    the share of total traffic crossing each way, every cut yields a
    lower bound on *network average* blocking; the bound reported is the
    maximum over cuts.  The bound is loose by design — it admits
    re-packing, which none of the simulated schemes perform. *)

open Arnet_topology
open Arnet_traffic

val of_cut : Graph.t -> Matrix.t -> members:bool array -> float
(** The bound contributed by a single cut — the bracketed expression of
    Section 4.  Directions without traffic contribute zero; a direction
    with traffic but zero capacity contributes its full traffic share
    (everything blocked). *)

val compute : Graph.t -> Matrix.t -> float
(** Maximum of {!of_cut} over all cuts.
    @raise Invalid_argument when the matrix is empty of demand or sizes
    disagree. *)

val compute_with_argmax : Graph.t -> Matrix.t -> float * bool array
(** Also returns the binding cut. *)
