lib/experiments/config.mli:
