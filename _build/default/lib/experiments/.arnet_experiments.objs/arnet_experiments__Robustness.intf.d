lib/experiments/robustness.mli: Arnet_sim Config Format
