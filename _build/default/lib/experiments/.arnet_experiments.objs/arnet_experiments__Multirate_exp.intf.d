lib/experiments/multirate_exp.mli: Config Format
