lib/experiments/cellular_exp.mli: Arnet_sim Config Format
