lib/experiments/random_mesh.ml: Arnet_core Arnet_paths Arnet_sim Arnet_topology Arnet_traffic Array Bfs Builders Config Engine Float Format Graph Gravity List Loads Matrix Route_table Scheme Stats
