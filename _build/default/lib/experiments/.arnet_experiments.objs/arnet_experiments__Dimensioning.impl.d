lib/experiments/dimensioning.ml: Approximation Arnet_core Arnet_paths Arnet_sim Arnet_topology Array Config Engine Graph Internet Link List Nsfnet Printf Protection Report Route_table Scheme Stats
