lib/experiments/quadrangle.mli: Config Format Sweep
