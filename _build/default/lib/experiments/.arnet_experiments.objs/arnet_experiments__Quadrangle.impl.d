lib/experiments/quadrangle.ml: Arnet_core Arnet_paths Arnet_topology Arnet_traffic Builders Matrix Route_table Scheme Sweep
