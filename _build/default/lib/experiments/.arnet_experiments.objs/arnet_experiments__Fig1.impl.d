lib/experiments/fig1.ml: Arnet_core Arnet_erlang Array Birth_death Format Printf Report Theorem
