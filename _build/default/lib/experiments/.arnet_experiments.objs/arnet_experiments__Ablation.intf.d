lib/experiments/ablation.mli: Arnet_sim Config Format Stats Sweep
