lib/experiments/sweep.mli: Arnet_sim Arnet_topology Arnet_traffic Config Engine Format Graph Matrix Stats
