lib/experiments/ablation.ml: Arnet_core Arnet_paths Arnet_sim Arnet_topology Arnet_traffic Config Engine Internet List Matrix Printf Protection Report Route_table Scheme Stats Sweep
