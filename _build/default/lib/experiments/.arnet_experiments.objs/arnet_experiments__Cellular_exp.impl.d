lib/experiments/cellular_exp.ml: Arnet_cellular Arnet_sim Array Borrowing Cell_grid Cell_sim Config List Report Stats
