lib/experiments/optimality_exp.mli: Config Format
