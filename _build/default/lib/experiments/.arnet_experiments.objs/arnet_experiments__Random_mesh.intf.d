lib/experiments/random_mesh.mli: Config Format
