lib/experiments/dimensioning.mli: Config Format
