lib/experiments/signalling_exp.mli: Config Format
