lib/experiments/config.ml: List Printf Sys
