lib/experiments/internet.mli: Arnet_paths Arnet_sim Arnet_traffic Config Format Matrix Route_table Sweep
