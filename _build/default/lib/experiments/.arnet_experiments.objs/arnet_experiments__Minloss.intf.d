lib/experiments/minloss.mli: Arnet_optimize Config Flow Format Sweep
