lib/experiments/fig2.ml: Arnet_core List Printf Protection Report
