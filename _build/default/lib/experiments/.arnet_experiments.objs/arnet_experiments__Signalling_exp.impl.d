lib/experiments/signalling_exp.ml: Arnet_core Arnet_paths Arnet_signalling Arnet_sim Arnet_traffic Array Config Format Internet List Matrix Protection Rng Route_table Setup_sim Stdlib Trace
