lib/experiments/bistability_exp.mli: Config Format
