lib/experiments/overload_exp.mli: Config Format
