lib/experiments/overload_exp.ml: Arnet_core Arnet_paths Arnet_sim Arnet_traffic Array Config Engine Float Internet List Matrix Printf Report Rng Scheme Stats Time_series Trace
