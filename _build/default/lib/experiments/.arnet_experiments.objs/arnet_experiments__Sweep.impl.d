lib/experiments/sweep.ml: Arnet_bound Arnet_sim Buffer Config Engine List Printf Report Stats
