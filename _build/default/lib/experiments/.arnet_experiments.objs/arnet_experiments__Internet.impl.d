lib/experiments/internet.ml: Arnet_core Arnet_paths Arnet_sim Arnet_topology Arnet_traffic Array Config Engine Fit Format Graph Link List Matrix Nsfnet Protection Route_table Scheme Stats Sweep
