open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_core

let capacity = 100

let default_loads =
  [ 60.; 65.; 70.; 75.; 80.; 82.5; 85.; 87.5; 90.; 92.5; 95.; 100. ]

let run ?(loads = default_loads) ~config () =
  let graph = Builders.full_mesh ~nodes:4 ~capacity in
  let routes = Route_table.build graph in
  let matrix_of load = Matrix.uniform ~nodes:4 ~demand:load in
  let policies_of matrix =
    [ Scheme.single_path routes;
      Scheme.uncontrolled routes;
      Scheme.controlled_auto ~matrix routes ]
  in
  Sweep.run ~config ~graph ~matrix_of ~policies_of ~xs:loads

let print ppf points = Sweep.print ~x_label:"erlangs" ppf points
