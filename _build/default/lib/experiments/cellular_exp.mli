(** Section 3.2's channel-borrowing application, exercised end-to-end:
    a reuse-3 lattice where controlled borrowing (protection levels for
    H = 3) must never do worse than no borrowing, and avoids
    uncontrolled borrowing's high-load collapse. *)

type point = {
  offered : float;  (** Erlangs per cell *)
  no_borrowing : Arnet_sim.Stats.summary;
  uncontrolled : Arnet_sim.Stats.summary;
  controlled : Arnet_sim.Stats.summary;
}

val default_offered : float list
(** Per-cell loads around C = 50: 30 .. 55. *)

val run :
  ?rows:int -> ?cols:int -> ?capacity:int -> ?offered:float list ->
  ?hot_spot:float ->
  config:Config.t -> unit -> point list
(** [hot_spot] multiplies the load of one corner cell (default 1.5 —
    borrowing only helps under imbalance, as with link-load fluctuations
    in the network case). Defaults: 4x5 grid, C = 50. *)

val print : Format.formatter -> point list -> unit
