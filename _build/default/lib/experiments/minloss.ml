open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_core
open Arnet_optimize

type result = {
  objective_min_hop : float;
  objective_optimized : float;
  support : int;
  average_hops : float;
  flow : Flow.t;
  minhop_points : Sweep.point list;
  optimized_points : Sweep.point list;
}

let run ?(scales = [ 0.8; 1.0; 1.2 ]) ~config () =
  let routes, matrix0 = Internet.nominal () in
  let graph = Route_table.graph routes in
  let capacities =
    Array.map (fun (l : Link.t) -> l.capacity) (Graph.links graph)
  in
  let minhop_loads = Loads.primary_link_loads routes matrix0 in
  let objective_min_hop =
    Frank_wolfe.objective_of_loads ~capacities ~loads:minhop_loads
  in
  let opt = Frank_wolfe.minimize_link_loss ~graph ~matrix:matrix0 () in
  let flow = opt.Frank_wolfe.flow in
  let choice =
    Controller.Sampled (fun ~src ~dst ~u -> Flow.sample flow ~src ~dst ~u)
  in
  let matrix_of scale = Matrix.scale matrix0 scale in
  let minhop_policies matrix =
    [ Scheme.single_path routes; Scheme.controlled_auto ~matrix routes ]
  in
  let optimized_policies matrix =
    (* protection levels must reflect the bifurcated primary loads *)
    let loads = Flow.link_loads flow matrix in
    let reserves =
      Protection.levels_of_loads ~capacities ~loads ~h:(Route_table.h routes)
    in
    [ Scheme.single_path ~choice routes;
      Scheme.controlled ~choice ~reserves routes ]
  in
  let minhop_points =
    Sweep.run ~config ~graph ~matrix_of ~policies_of:minhop_policies
      ~xs:scales
  in
  let optimized_points =
    Sweep.run ~config ~graph ~matrix_of ~policies_of:optimized_policies
      ~xs:scales
  in
  { objective_min_hop;
    objective_optimized = opt.Frank_wolfe.objective;
    support = Flow.support_size flow;
    average_hops = Flow.average_hops flow matrix0;
    flow;
    minhop_points;
    optimized_points }

let print ppf r =
  Report.note ppf
    (Printf.sprintf
       "expected primary loss/time at nominal: min-hop %.2f -> optimized %.2f \
        (%d path assignments, avg %.2f hops)"
       r.objective_min_hop r.objective_optimized r.support r.average_hops);
  Report.note ppf "min-hop primaries:";
  Sweep.print ~x_label:"load-scale" ppf r.minhop_points;
  Report.note ppf "min-loss (bifurcated) primaries:";
  Sweep.print ~x_label:"load-scale" ppf r.optimized_points
