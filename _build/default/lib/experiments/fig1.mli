(** Figure 1: the Markov chain of a protected link.

    The figure itself is a diagram; its reproducible content is the
    chain's behaviour, so we expose the stationary distribution and the
    derived quantities for a representative parameterization, plus a
    numeric check of Theorem 1 on the same chain. *)

type t = {
  capacity : int;
  reserve : int;
  primary : float;
  stationary : float array;
  time_congestion : float;  (** the generalized Erlang blocking B(lambda, C) *)
  worst_extra_loss : float;  (** exact max_s L(s) over admitting states *)
  theorem_bound : float;  (** B(nu,C)/B(nu,C-r) *)
}

val run :
  ?capacity:int -> ?reserve:int -> ?primary:float ->
  ?overflow:(int -> float) -> unit -> t
(** Defaults: C = 10, r = 3, nu = 7, overflow rate [3 / (1 + s)]
    (state-dependent, as assumption A1 allows). *)

val print : Format.formatter -> t -> unit
