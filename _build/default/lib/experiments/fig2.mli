(** Figure 2: protection level r versus primary load, C = 100,
    H = 2 / 6 / 120. *)

val hs : int list
(** [2; 6; 120] as in the figure. *)

val default_loads : float list
(** 1 .. 100 Erlangs. *)

val run : ?capacity:int -> ?loads:float list -> unit -> (int * (float * int) list) list
(** Per H, the [(load, r)] curve. *)

val print : Format.formatter -> (int * (float * int) list) list -> unit
