(** Focused overload on the NSFNet model.

    The paper motivates controlled alternate routing with the AT&T
    experience under extraordinary loads (Thanksgiving-day traffic,
    Section 1) and with uncontrolled alternate routing's avalanche
    behaviour.  Here a stationary nominal background runs for the whole
    experiment while, during a mid-run surge window, all traffic into
    and out of one hot node is multiplied several-fold.  The time series
    of network blocking shows how each scheme absorbs the surge: the
    uncontrolled scheme lets overflow traffic drag the whole network
    into a high-blocking state that outlasts the surge region, while
    state protection contains the damage near the hot spot. *)

type series = { scheme : string; points : (float * float) list }
(** [(window start, blocking in window)] per scheme. *)

type result = {
  surge_start : float;
  surge_stop : float;
  hot_node : int;
  series : series list;
  peak : (string * float) list;  (** per scheme, worst window *)
  during_surge : (string * float) list;  (** per scheme, pooled over surge *)
}

val run :
  ?hot_node:int ->
  ?surge_factor:float ->
  ?window:float ->
  config:Config.t ->
  unit ->
  result
(** Defaults: hot node 10 (Ithaca, the busiest), surge factor 4 on its
    row and column, surge during the middle third of the measurement
    window, 10-unit windows. *)

val print : Format.formatter -> result -> unit
