(** Does the guarantee generalize beyond the paper's two topologies?

    The paper's pitch is *general-mesh* networks, but its evaluation
    uses one full mesh and one backbone.  This experiment samples Waxman
    random topologies, loads each with gravity traffic calibrated to a
    target peak link utilization, and checks the central guarantee —
    controlled alternate routing never worse than single-path — plus the
    usual scheme ordering, on every sampled mesh. *)

type row = {
  seed : int;
  nodes : int;
  links : int;
  diameter : int;
  peak_utilization : float;  (** calibrated max primary load over C *)
  single_path : float;
  uncontrolled : float;
  controlled : float;
  guarantee_ok : bool;  (** controlled <= single-path within noise *)
}

val run :
  ?topology_seeds:int list -> ?nodes:int -> ?capacity:int ->
  ?target_utilization:float ->
  config:Config.t -> unit -> row list
(** Defaults: 6 topologies of 10 nodes, C = 50, calibrated so the
    busiest link sees 1.6 C of primary demand (deep overload — where
    uncontrolled alternate routing misbehaves and the guarantee is at
    risk). *)

val print : Format.formatter -> row list -> unit
