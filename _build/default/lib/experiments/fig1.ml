open Arnet_erlang
open Arnet_core

type t = {
  capacity : int;
  reserve : int;
  primary : float;
  stationary : float array;
  time_congestion : float;
  worst_extra_loss : float;
  theorem_bound : float;
}

let default_overflow s = 3. /. (1. +. float_of_int s)

let run ?(capacity = 10) ?(reserve = 3) ?(primary = 7.)
    ?(overflow = default_overflow) () =
  let chain =
    Birth_death.protected_link ~primary ~overflow ~capacity ~reserve
  in
  { capacity;
    reserve;
    primary;
    stationary = Birth_death.stationary chain;
    time_congestion = Birth_death.time_congestion chain;
    worst_extra_loss =
      Theorem.extra_loss_worst_state ~primary ~overflow ~capacity ~reserve;
    theorem_bound = Theorem.bound ~primary ~capacity ~reserve }

let print ppf t =
  Report.note ppf
    (Printf.sprintf "link chain: C=%d r=%d nu=%g (alternates refused from state %d)"
       t.capacity t.reserve t.primary (t.capacity - t.reserve));
  Format.fprintf ppf "  state:      ";
  Array.iteri (fun s _ -> Format.fprintf ppf " %6d" s) t.stationary;
  Format.fprintf ppf "@.  stationary: ";
  Array.iter (fun p -> Format.fprintf ppf " %6.4f" p) t.stationary;
  Format.fprintf ppf "@.";
  Report.note ppf
    (Printf.sprintf "generalized Erlang blocking B(lambda,C) = %.6f"
       t.time_congestion);
  Report.note ppf
    (Printf.sprintf
       "Theorem 1: worst exact extra loss L = %.6f <= bound %.6f (%s)"
       t.worst_extra_loss t.theorem_bound
       (if t.worst_extra_loss <= t.theorem_bound +. 1e-9 then "holds"
        else "VIOLATED"))
