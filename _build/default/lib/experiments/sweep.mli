(** Generic load sweeps: the backbone of every blocking-vs-load figure. *)

open Arnet_topology
open Arnet_traffic
open Arnet_sim

type point = {
  x : float;  (** the sweep coordinate (offered load or load scale) *)
  bound : float;  (** Erlang cut-set lower bound at this matrix *)
  schemes : (string * Stats.summary) list;  (** per-scheme blocking *)
}

val run :
  config:Config.t ->
  graph:Graph.t ->
  matrix_of:(float -> Matrix.t) ->
  policies_of:(Matrix.t -> Engine.policy list) ->
  xs:float list ->
  point list
(** For each sweep coordinate: build the matrix, build the policies
    (they may depend on the matrix — protection levels and shadow
    prices do), replicate over the config's seeds with shared traces,
    and attach the Erlang bound. *)

val print :
  ?x_label:string -> Format.formatter -> point list -> unit
(** Table with the bound and the per-scheme mean blocking (column order
    from the first point). *)

val print_with_errors : Format.formatter -> point list -> unit
(** Adds across-seed standard errors in a second row per point. *)

val scheme_mean : point -> string -> float
(** Mean blocking of a named scheme at a point.
    @raise Not_found when the scheme is absent. *)

val to_csv : ?x_label:string -> point list -> string
(** Comma-separated rendering (header row; mean and stderr columns per
    scheme) for external plotting tools. *)
