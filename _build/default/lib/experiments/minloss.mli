(** Section 4.2.2, "Primary paths chosen to minimize link loss".

    Primaries are re-derived by convex minimization of the total expected
    link loss (bifurcated flows), then the three routing schemes are
    re-run on top.  The paper's findings: without alternate routing the
    optimized primaries beat minimum-hop, but once controlled alternate
    routing is added the two SI policies perform almost identically —
    the scheme is insensitive to the primary-path rule. *)

open Arnet_optimize

type result = {
  objective_min_hop : float;
      (** expected lost primary calls/time under min-hop primaries
          (independent-link model) *)
  objective_optimized : float;  (** same after Frank-Wolfe *)
  support : int;  (** number of (pair, path) assignments in the optimum *)
  average_hops : float;  (** demand-weighted primary length after split *)
  flow : Flow.t;
  minhop_points : Sweep.point list;
      (** single-path & controlled under min-hop primaries *)
  optimized_points : Sweep.point list;
      (** same schemes under bifurcated optimized primaries *)
}

val run : ?scales:float list -> config:Config.t -> unit -> result
(** Optimizes at nominal load, then sweeps.  Default scales
    [0.8; 1.0; 1.2]. *)

val print : Format.formatter -> result -> unit
