(** Ablations of the design choices DESIGN.md calls out.

    - [h_sweep]: how the global design parameter H trades low-load
      permissiveness against protection strength (Section 3.2 leaves
      "how to choose a good H" as future work; this maps the space).
    - [per_link_h]: footnote 5's per-link [H^k] against the global H.
    - [global_state]: the paper's localized scheme against a
      least-busy-alternative router that consults global link state —
      quantifying what the locality restriction costs.
    - [ott_variants]: unreduced (the paper's choice) vs reduced-load
      shadow prices. *)

open Arnet_sim

val h_sweep :
  ?scales:float list -> ?hs:int list -> config:Config.t -> unit ->
  (int * (float * Stats.summary) list) list
(** Per H, the controlled scheme's blocking across load scales on the
    NSFNet model.  Default H in {2, 4, 6, 8, 11}, scales {0.8, 1.0, 1.2}. *)

val print_h_sweep :
  Format.formatter -> (int * (float * Stats.summary) list) list -> unit

val variants :
  ?scales:float list -> config:Config.t -> unit -> Sweep.point list
(** One sweep with: controlled (global H), controlled (per-link H^k),
    least-busy with the same protection levels, Ott-Krishnan unreduced
    and reduced. *)

val print_variants : Format.formatter -> Sweep.point list -> unit
