(** The avalanche / bistability analysis behind Section 1's warning.

    Two complementary views:

    - {b mean-field}: cold- and hot-start fixed points of the symmetric
      model ({!Arnet_core.Bistability}) across loads, without and with
      state protection — the protected map loses its high-blocking
      fixed point;
    - {b simulation}: on a fully-connected 6-node network inside the
      critical region, the uncontrolled scheme ignites spontaneously
      from an idle start into a sustained high-blocking state (the
      avalanche), while the controlled scheme holds blocking near the
      single-path level throughout. *)

type analytic_row = {
  load : float;
  cold_free : float;  (** network blocking, cold start, r = 0 *)
  hot_free : float;  (** hot start, r = 0 *)
  cold_protected : float;  (** cold start, protective r *)
  hot_protected : float;
}

type t = {
  protective_reserve : int;
  rows : analytic_row list;
  critical_free : float option;  (** onset of bistability at r = 0 *)
  critical_protected : float option;
  sim_load : float;  (** per-pair Erlangs of the ignition run *)
  sim_series : (string * (float * float) list) list;
      (** blocking time series per scheme *)
}

val run :
  ?capacity:int -> ?loads:float list -> ?sim_load:float ->
  config:Config.t -> unit -> t
(** Defaults: C = 100, loads 60..100, ignition run at 85 Erlangs per
    ordered pair on K6. *)

val print : Format.formatter -> t -> unit
