(** Capacity dimensioning: how much transmission does controlled
    alternate routing save?

    The paper's closing argument lists "less sensitivity ... to traffic
    estimates and network engineering" among alternate routing's
    benefits; the engineering flip side is capital: for a given
    grade-of-service target, a network that shares capacity through
    controlled alternates needs less of it.  This experiment scales all
    NSFNet capacities uniformly and finds, via the fast fixed-point
    model, the smallest scale meeting a blocking target under (a)
    single-path routing and (b) the controlled scheme (protection levels
    recomputed at each candidate capacity); both endpoints are then
    validated by simulation. *)

type result = {
  target : float;  (** grade-of-service target on network blocking *)
  single_path_scale : float;  (** capacity multiplier needed *)
  controlled_scale : float;
  single_path_capacity : int;  (** total capacity units at that scale *)
  controlled_capacity : int;
  savings : float;  (** fraction of capacity saved by the scheme *)
  single_path_simulated : float;  (** simulated blocking at its scale *)
  controlled_simulated : float;
}

val run :
  ?target:float -> ?lo:float -> ?hi:float -> config:Config.t -> unit ->
  result
(** Defaults: 1% blocking target at nominal NSFNet load, scale searched
    in [0.8, 2.0].  The fixed-point model does the bisection; the result
    is then refined upward until the *simulated* blocking meets the
    target (within 10% slack for seed noise), so the reported savings
    are not an artifact of the independence approximation.
    @raise Invalid_argument if the target is not met even at [hi]. *)

val print : Format.formatter -> result -> unit
