(** The NSFNet T3 "Internet model" experiments — Table 1, Figures 6/7,
    and the Section 4.2.2 variations (H = 6, link failures, fairness).

    The nominal traffic matrix is reconstructed from Table 1's published
    per-link primary loads (see {!Arnet_traffic.Fit}); other loads scale
    it linearly, with the paper's "Load = 10" nominal point mapped to
    scale 1. *)

open Arnet_paths
open Arnet_traffic

val nominal : unit -> Route_table.t * Matrix.t
(** Unrestricted (H = 11) route table over the backbone and the fitted
    nominal matrix.  Recomputed on each call (cheap, deterministic). *)

val paper_load_of_scale : float -> float
(** Scale 1.0 is the paper's Load=10 axis value: [10 * scale]. *)

val default_scales : float list
(** 0.4 .. 1.4 around nominal. *)

val run :
  ?h:int ->
  ?scales:float list ->
  ?failed_links:(int * int) list ->
  ?with_ott_krishnan:bool ->
  config:Config.t ->
  unit ->
  Sweep.point list
(** Blocking-vs-load sweep.  [h] caps alternate lengths (default 11,
    the unrestricted case of Figures 6/7); [failed_links] removes
    directed links before routing (Section 4.2.2 "Link failures");
    [with_ott_krishnan] (default true when [failed_links] is empty)
    adds the shadow-price comparator. *)

val print : Format.formatter -> Sweep.point list -> unit

(** {1 Table 1} *)

type table1_row = {
  src : int;
  dst : int;
  capacity : int;
  paper_load : float;
  fitted_load : float;
  paper_r6 : int;
  our_r6 : int;
  paper_r11 : int;
  our_r11 : int;
}

val table1 : unit -> table1_row list
(** One row per directed backbone link, paper values alongside ours
    (ours computed from the fitted matrix via Equation 1 and
    Section 3.1). *)

val print_table1 : Format.formatter -> table1_row list -> unit

(** {1 Fairness (per-O-D blocking skew)} *)

type skew_row = { scheme : string; skew : Arnet_sim.Stats.skew }

val fairness : ?h:int -> config:Config.t -> unit -> skew_row list
(** Per-pair blocking skew at nominal load with H = 6 (the paper's
    setting): single-path most skewed, uncontrolled least, controlled
    in between. *)

val print_fairness : Format.formatter -> skew_row list -> unit
