(** Multi-rate extension experiment (the paper's "multiple call types"
    future work).

    A fully-connected quadrangle carries a narrowband (1 unit) and a
    wideband (6 unit) class.  We check that (a) the Kaufman-Roberts
    model agrees with the simulator on an isolated link, and (b) the
    bandwidth-unit generalization of state protection preserves the
    headline behaviour: uncontrolled alternate routing collapses at
    overload, controlled stays at or below single-path. *)

type point = {
  load : float;  (** narrowband Erlangs per ordered pair; wideband is
                     scaled to 1/12 of it so both classes contribute
                     comparable bandwidth *)
  schemes : (string * float) list;  (** mean bandwidth blocking *)
  narrowband_controlled : float;  (** per-class call blocking *)
  wideband_controlled : float;
}

val kaufman_roberts_check :
  ?capacity:int -> ?seeds:int list -> unit -> (float * float) list
(** [(analytic, simulated)] per class on one isolated link at a fixed
    two-class load — the substrate validation. *)

val run : ?loads:float list -> config:Config.t -> unit -> point list

val print :
  Format.formatter -> (float * float) list * point list -> unit
