open Arnet_core

let hs = [ 2; 6; 120 ]

let default_loads = List.init 100 (fun i -> float_of_int (i + 1))

let run ?(capacity = 100) ?(loads = default_loads) () =
  List.map (fun h -> (h, Protection.sweep ~capacity ~h ~loads)) hs

let print ppf curves =
  let loads =
    match curves with [] -> [] | (_, pts) :: _ -> List.map fst pts
  in
  Report.series_header ppf
    ~columns:("lambda" :: List.map (fun (h, _) -> Printf.sprintf "r(H=%d)" h) curves);
  List.iter
    (fun load ->
      let rs =
        List.map
          (fun (_, pts) -> float_of_int (List.assoc load pts))
          curves
      in
      Report.series_row ppf ~x:load rs)
    loads
