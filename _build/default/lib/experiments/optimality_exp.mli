(** How close is the controlled scheme to the true optimum?

    On a network small enough for exact Markov-decision analysis (a
    directed triangle: three streams, one of which has a two-link
    alternate), we compute, with no simulation noise:

    - the optimal blocking over {e all} stationary policies,
    - the exact blocking of single-path, uncontrolled, and controlled
      (Section-3.1 levels, H = 2) routing,
    - and, as a simulator calibration, the call-by-call engine's
      estimate for the controlled scheme on the same model.

    The paper's qualitative claims become exact statements here:
    uncontrolled overtakes single-path beyond a critical load, the
    controlled scheme tracks the better of the two, and single-path is
    near-optimal at high load. *)

type row = {
  load : float;  (** Erlangs per stream *)
  optimal : float;
  single_path : float;
  uncontrolled : float;
  controlled : float;
  controlled_simulated : float;  (** engine estimate of the same policy *)
  reserve : int;  (** the H=2 level in force on the alternate's links *)
}

val run :
  ?capacity:int -> ?loads:float list -> config:Config.t -> unit -> row list
(** Defaults: C = 8 per link, loads 4..10 per stream. *)

val print : Format.formatter -> row list -> unit
