(** Robustness of state protection to load-estimation error, and the
    fully distributed adaptive variant.

    The paper justifies letting links *estimate* their primary demand by
    the known robustness of trunk reservation (Key [21], Section 2.2):
    a protection level optimized for one load works well under
    variations.  Two experiments make that concrete on the NSFNet model:

    - [misestimation]: run the controlled scheme with every protection
      level computed from [Lambda * factor] for factors well away from
      1; blocking should barely move (and the guarantee vs single-path
      should survive since overestimating [r] degrades gracefully toward
      single-path behaviour).
    - [adaptive]: the {!Arnet_core.Scheme.controlled_adaptive} policy,
      which learns Lambda from passing set-ups, compared against the
      a-priori controlled scheme and single-path. *)

type misestimation_point = {
  factor : float;  (** multiplier applied to the true loads before
                       computing protection levels *)
  blocking : Arnet_sim.Stats.summary;
}

val misestimation :
  ?scale:float -> ?factors:float list -> config:Config.t -> unit ->
  misestimation_point list * Arnet_sim.Stats.summary
(** Sweep of misestimation factors (default 0.5 .. 2.0) at a given load
    scale (default 1.2, where protection matters), plus the single-path
    reference on the same traces. *)

val print_misestimation :
  Format.formatter ->
  misestimation_point list * Arnet_sim.Stats.summary ->
  unit

type adaptive_result = {
  schemes : (string * Arnet_sim.Stats.summary) list;
      (** single-path, a-priori controlled, adaptive controlled *)
}

val adaptive : ?scale:float -> config:Config.t -> unit -> adaptive_result

val print_adaptive : Format.formatter -> adaptive_result -> unit
