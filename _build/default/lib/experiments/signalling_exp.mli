(** How fast must signalling be for the atomic-admission abstraction to
    hold?

    The paper's protocol checks resources on the set-up packet's forward
    pass and books them on the way back, and assumes the exchange is
    effectively instantaneous.  This experiment runs the packet-level
    protocol ({!Arnet_signalling.Setup_sim}) on the NSFNet model across
    per-hop latencies and reports blocking, glare (capacity stolen
    between check and booking), and set-up latency for the controlled
    and uncontrolled schemes. *)

type point = {
  hop_latency : float;
  scheme : string;
  blocking : float;
  glare_per_carried : float;
  mean_setup_latency : float;
}

val run :
  ?latencies:float list -> ?scale:float -> config:Config.t -> unit ->
  point list
(** Defaults: latencies {0, 0.001, 0.01, 0.05}, nominal load. *)

val print : Format.formatter -> point list -> unit
