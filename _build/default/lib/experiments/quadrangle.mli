(** The fully-connected quadrangle experiment — Figures 3 and 4.

    Four nodes, every ordered pair directly linked (C = 100 per
    direction) and offered the same symmetric demand; primaries are the
    one-hop direct links, alternates the two- and three-hop detours
    (H = 3).  The paper's reading: uncontrolled alternate routing wins
    below about 85 Erlangs then degrades badly, single-path is poor
    until about 90 then stays low, and the controlled scheme sticks with
    the better of the two — strictly better than both in the 85-95
    range — while never doing worse than single-path. *)

val capacity : int
(** 100 calls per directed link. *)

val default_loads : float list
(** 60 .. 100 Erlangs per ordered pair, step 5 (plus 82.5/87.5/92.5 for
    detail around the crossover). *)

val run : ?loads:float list -> config:Config.t -> unit -> Sweep.point list
(** Single-path, uncontrolled and controlled alternate routing, plus the
    Erlang bound. *)

val print : Format.formatter -> Sweep.point list -> unit
