type t = {
  cells : int;
  capacity : int;
  neighbors : int array array;
  lock_sets : int array array array;
}

let make ~capacity ~neighbors ~lock_sets =
  let cells = Array.length neighbors in
  if cells < 2 then invalid_arg "Cell_grid.make: need >= 2 cells";
  if capacity < 1 then invalid_arg "Cell_grid.make: capacity < 1";
  if Array.length lock_sets <> cells then
    invalid_arg "Cell_grid.make: lock_sets length mismatch";
  let check_cell idx =
    if idx < 0 || idx >= cells then
      invalid_arg "Cell_grid.make: cell index out of range"
  in
  Array.iteri
    (fun borrower nbrs ->
      if Array.length lock_sets.(borrower) <> Array.length nbrs then
        invalid_arg "Cell_grid.make: one lock set per neighbour required";
      Array.iteri
        (fun idx lender ->
          check_cell lender;
          if lender = borrower then
            invalid_arg "Cell_grid.make: cannot borrow from self";
          let ls = lock_sets.(borrower).(idx) in
          if Array.length ls = 0 then
            invalid_arg "Cell_grid.make: empty lock set";
          Array.iter check_cell ls;
          if not (Array.exists (fun c -> c = lender) ls) then
            invalid_arg "Cell_grid.make: lock set must contain the lender")
        nbrs)
    neighbors;
  { cells; capacity; neighbors; lock_sets }

let reuse3_grid ~rows ~cols ~capacity =
  if rows < 2 || cols < 3 then invalid_arg "Cell_grid.reuse3_grid: too small";
  let cells = rows * cols in
  let idx r c = (r * cols) + c in
  let color r c = (r + c) mod 3 in
  let in_grid r c = r >= 0 && r < rows && c >= 0 && c < cols in
  let neighbour_coords r c =
    List.filter
      (fun (r', c') -> in_grid r' c')
      [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]
  in
  let neighbors =
    Array.init cells (fun i ->
        let r = i / cols and c = i mod cols in
        Array.of_list (List.map (fun (r', c') -> idx r' c') (neighbour_coords r c)))
  in
  let lock_set borrower lender =
    (* the lender plus up to two cells sharing the lender's channel
       group within reuse distance (Manhattan <= 2) of the borrower —
       there the borrowed channel must be locked *)
    let lr = lender / cols and lc = lender mod cols in
    let br = borrower / cols and bc = borrower mod cols in
    let col = color lr lc in
    let cocells = ref [] in
    for r' = 0 to rows - 1 do
      for c' = 0 to cols - 1 do
        let dist = abs (r' - br) + abs (c' - bc) in
        if
          dist >= 1 && dist <= 2
          && color r' c' = col
          && idx r' c' <> lender
        then cocells := (dist, idx r' c') :: !cocells
      done
    done;
    let nearest_first = List.sort compare !cocells in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | (_, x) :: rest -> x :: take (n - 1) rest
    in
    Array.of_list (lender :: take 2 nearest_first)
  in
  let lock_sets =
    Array.init cells (fun borrower ->
        Array.map (lock_set borrower) neighbors.(borrower))
  in
  make ~capacity ~neighbors ~lock_sets

let max_lock_set_size t =
  Array.fold_left
    (fun acc per_neighbour ->
      Array.fold_left
        (fun acc ls -> Stdlib.max acc (Array.length ls))
        acc per_neighbour)
    0 t.lock_sets
