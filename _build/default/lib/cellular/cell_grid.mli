(** Cellular layouts for channel borrowing (Section 3.2).

    A call's primary resource is the channel pool of the cell it
    originates in; its alternate resource set, when the cell is
    exhausted, is a neighbouring cell's pool — but borrowing a channel
    from neighbour [j] locks one channel in each cell of [j]'s *lock
    set* (the borrowed channel becomes unusable in [j]'s co-channel
    cells near the borrower).  With 3-cell lock sets, choosing the
    protection level for [H = 3] gives the paper's guarantee that
    borrowing never does worse than no borrowing. *)

type t = {
  cells : int;
  capacity : int;  (** channels per cell *)
  neighbors : int array array;  (** borrowing candidates, in attempt order *)
  lock_sets : int array array array;
      (** [lock_sets.(borrower).(idx)] is the set of cells that each lose
          one channel when [borrower] borrows from
          [neighbors.(borrower).(idx)]; always contains that lender *)
}

val make :
  capacity:int ->
  neighbors:int array array ->
  lock_sets:int array array array ->
  t
(** Validates shapes: one lock set per neighbour, each containing the
    lender, all indices in range, [capacity >= 1].
    @raise Invalid_argument otherwise. *)

val reuse3_grid : rows:int -> cols:int -> capacity:int -> t
(** A [rows * cols] lattice under a 3-colour frequency reuse plan
    (colour [(row + col) mod 3]).  Cell [(r, c)] has index
    [r * cols + c]; its borrowing candidates are its 4-neighbours, and
    borrowing from lender [j] locks [j] plus up to two of [j]'s
    same-colour cells adjacent to the borrower's neighbourhood — lock
    sets have at most 3 cells, the canonical case discussed in the
    paper. *)

val max_lock_set_size : t -> int
(** The [H] to protect against. *)
