(** Call-by-call simulator for cellular channel borrowing.

    Mirrors the network engine: pre-generated per-seed workloads are
    replayed through each borrowing variant, an idle-start warm-up is
    excluded, and per-cell blocking is reported. *)

type call = { time : float; cell : int; holding : float }

type outcome = {
  variant : Borrowing.variant;
  offered : int;
  blocked : int;
  borrowed : int;  (** carried on a borrowed channel *)
  blocked_per_cell : int array;
  offered_per_cell : int array;
}

val generate_calls :
  rng:Arnet_sim.Rng.t -> duration:float -> offered_per_cell:float array ->
  call array
(** Aggregated Poisson arrivals over cells, unit-mean exponential
    holding times, sorted by time.
    @raise Invalid_argument when total offered traffic is not positive. *)

val run :
  ?warmup:float ->
  grid:Cell_grid.t ->
  variant:Borrowing.variant ->
  call array ->
  outcome
(** Own-cell channel first; otherwise neighbours are tried in the
    grid's order, and a successful borrow holds one channel in every
    lock-set cell for the call's duration. *)

val blocking : outcome -> float

val compare_variants :
  ?warmup:float ->
  seeds:int list ->
  duration:float ->
  grid:Cell_grid.t ->
  offered_per_cell:float array ->
  variants:Borrowing.variant list ->
  unit ->
  (string * float list) list
(** Per variant, the per-seed network blocking, each seed replaying the
    same workload through every variant. *)
