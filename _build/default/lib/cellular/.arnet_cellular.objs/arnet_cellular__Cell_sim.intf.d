lib/cellular/cell_sim.mli: Arnet_sim Borrowing Cell_grid
