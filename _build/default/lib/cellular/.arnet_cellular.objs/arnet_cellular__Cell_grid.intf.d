lib/cellular/cell_grid.mli:
