lib/cellular/cell_grid.ml: Array List Stdlib
