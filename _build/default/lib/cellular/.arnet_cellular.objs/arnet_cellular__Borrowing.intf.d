lib/cellular/borrowing.mli: Cell_grid
