lib/cellular/borrowing.ml: Arnet_core Array Cell_grid
