lib/cellular/cell_sim.ml: Arnet_sim Array Borrowing Cell_grid Event_queue List Rng
