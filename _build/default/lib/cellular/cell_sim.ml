open Arnet_sim

type call = { time : float; cell : int; holding : float }

type outcome = {
  variant : Borrowing.variant;
  offered : int;
  blocked : int;
  borrowed : int;
  blocked_per_cell : int array;
  offered_per_cell : int array;
}

let generate_calls ~rng ~duration ~offered_per_cell =
  if duration <= 0. then invalid_arg "Cell_sim.generate_calls: duration";
  let n = Array.length offered_per_cell in
  let total = Array.fold_left ( +. ) 0. offered_per_cell in
  if total <= 0. then invalid_arg "Cell_sim.generate_calls: no traffic";
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i d ->
      acc := !acc +. d;
      cumulative.(i) <- !acc)
    offered_per_cell;
  let pick x =
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > x then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let out = ref [] in
  let t = ref (Rng.exponential rng ~rate:total) in
  while !t < duration do
    let cell = pick (Rng.float rng total) in
    let holding = Rng.exponential rng ~rate:1. in
    out := { time = !t; cell; holding } :: !out;
    t := !t +. Rng.exponential rng ~rate:total
  done;
  Array.of_list (List.rev !out)

let run ?(warmup = 10.) ~grid ~variant calls =
  let { Cell_grid.cells; capacity; neighbors; lock_sets } = grid in
  let occupancy = Array.make cells 0 in
  let departures : int array Event_queue.t = Event_queue.create () in
  let offered = ref 0 and blocked = ref 0 and borrowed = ref 0 in
  let offered_per_cell = Array.make cells 0 in
  let blocked_per_cell = Array.make cells 0 in
  let release _time held =
    Array.iter
      (fun c ->
        occupancy.(c) <- occupancy.(c) - 1;
        assert (occupancy.(c) >= 0))
      held
  in
  let admit call held =
    Array.iter (fun c -> occupancy.(c) <- occupancy.(c) + 1) held;
    Event_queue.push departures ~time:(call.time +. call.holding) held
  in
  let try_borrow call =
    let candidates = neighbors.(call.cell) in
    let rec attempt idx =
      if idx >= Array.length candidates then None
      else
        let lock_set = lock_sets.(call.cell).(idx) in
        if Borrowing.admits_borrow grid variant ~occupancy ~lock_set then
          Some lock_set
        else attempt (idx + 1)
    in
    attempt 0
  in
  let handle call =
    Event_queue.pop_until departures ~time:call.time ~f:release;
    let measured = call.time >= warmup in
    if measured then begin
      incr offered;
      offered_per_cell.(call.cell) <- offered_per_cell.(call.cell) + 1
    end;
    if occupancy.(call.cell) < capacity then admit call [| call.cell |]
    else
      match try_borrow call with
      | Some lock_set ->
        admit call (Array.copy lock_set);
        if measured then incr borrowed
      | None ->
        if measured then begin
          incr blocked;
          blocked_per_cell.(call.cell) <- blocked_per_cell.(call.cell) + 1
        end
  in
  Array.iter handle calls;
  { variant;
    offered = !offered;
    blocked = !blocked;
    borrowed = !borrowed;
    blocked_per_cell;
    offered_per_cell }

let blocking o =
  if o.offered = 0 then 0. else float_of_int o.blocked /. float_of_int o.offered

let compare_variants ?warmup ~seeds ~duration ~grid ~offered_per_cell ~variants
    () =
  if seeds = [] then invalid_arg "Cell_sim.compare_variants: no seeds";
  let results =
    List.map (fun v -> (Borrowing.variant_name v, ref [])) variants
  in
  let one_seed seed =
    let rng = Rng.substream (Rng.create ~seed) "cellular" in
    let calls = generate_calls ~rng ~duration ~offered_per_cell in
    List.iter2
      (fun variant (_, acc) ->
        acc := blocking (run ?warmup ~grid ~variant calls) :: !acc)
      variants results
  in
  List.iter one_seed seeds;
  List.map (fun (name, acc) -> (name, List.rev !acc)) results
