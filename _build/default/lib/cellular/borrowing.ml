type variant = No_borrowing | Uncontrolled | Controlled of int array

let protection_levels grid ~offered_per_cell =
  if Array.length offered_per_cell <> grid.Cell_grid.cells then
    invalid_arg "Borrowing.protection_levels: length mismatch";
  let h = Cell_grid.max_lock_set_size grid in
  Array.map
    (fun offered ->
      if offered <= 0. then 0
      else
        Arnet_core.Protection.level ~offered ~capacity:grid.Cell_grid.capacity
          ~h)
    offered_per_cell

let cell_admits grid variant ~occupancy cell =
  let capacity = grid.Cell_grid.capacity in
  match variant with
  | No_borrowing -> false
  | Uncontrolled -> occupancy.(cell) < capacity
  | Controlled levels -> occupancy.(cell) < capacity - levels.(cell)

let admits_borrow grid variant ~occupancy ~lock_set =
  match variant with
  | No_borrowing -> false
  | _ -> Array.for_all (cell_admits grid variant ~occupancy) lock_set

let variant_name = function
  | No_borrowing -> "no-borrowing"
  | Uncontrolled -> "uncontrolled-borrowing"
  | Controlled _ -> "controlled-borrowing"
