(** Channel-borrowing policies over a {!Cell_grid.t}.

    Direct transcription of the controlled-alternate-routing machinery
    onto the Multiple Service / Multiple Resource model of Section 3.2:
    the "links" of an alternate "path" are the cells of a lock set, so
    a lock set of size at most 3 is protected with the [H = 3] level. *)

type variant =
  | No_borrowing  (** blocked calls are lost — the single-path analogue *)
  | Uncontrolled  (** borrow whenever every lock-set cell has a channel *)
  | Controlled of int array
      (** per-cell protection levels: a cell participates in a borrow
          only below [capacity - level] *)

val protection_levels : Cell_grid.t -> offered_per_cell:float array -> int array
(** The Section-3.1 levels with [H = max lock-set size], per cell.
    Cells with no offered traffic get level 0. *)

val admits_borrow :
  Cell_grid.t -> variant -> occupancy:int array -> lock_set:int array -> bool
(** Whether every cell of [lock_set] accepts the borrowed channel under
    the variant's rule ([No_borrowing] always refuses). *)

val variant_name : variant -> string
