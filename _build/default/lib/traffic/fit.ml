open Arnet_topology
open Arnet_paths

type result = {
  matrix : Matrix.t;
  achieved : float array;
  max_relative_error : float;
  iterations : int;
}

(* Largest single-step multiplicative correction; keeps the iteration
   stable when a link's current load is far from (or at) zero. *)
let ratio_cap = 8.

let to_link_loads ?seed ?(tolerance = 1e-6) ?(max_iterations = 5_000) routes
    ~target =
  let g = Route_table.graph routes in
  let m = Graph.link_count g in
  if Array.length target <> m then
    invalid_arg "Fit.to_link_loads: target length mismatch";
  Array.iter
    (fun t ->
      if not (Float.is_finite t) || t < 0. then
        invalid_arg "Fit.to_link_loads: bad target load")
    target;
  let total_target = Array.fold_left ( +. ) 0. target in
  let seed =
    match seed with
    | Some s ->
      if Matrix.nodes s <> Graph.node_count g then
        invalid_arg "Fit.to_link_loads: seed size mismatch";
      s
    | None -> Gravity.degree_weighted g ~total:(Float.max total_target 1.)
  in
  let current = ref seed in
  let rec iterate n =
    let loads = Loads.primary_link_loads routes !current in
    let err = Loads.link_load_error ~target loads in
    if err <= tolerance || n >= max_iterations then
      { matrix = !current;
        achieved = loads;
        max_relative_error = err;
        iterations = n }
    else begin
      let ratio k =
        if target.(k) = 0. then 0.
        else if loads.(k) <= 0. then ratio_cap
        else Float.min ratio_cap (target.(k) /. loads.(k))
      in
      let adjust i j d =
        if d = 0. || not (Route_table.has_route routes ~src:i ~dst:j) then d
        else begin
          let p = Route_table.primary routes ~src:i ~dst:j in
          let ids = Path.link_ids p in
          let log_sum =
            List.fold_left (fun acc k -> acc +. log (ratio k)) 0. ids
          in
          let geo_mean = exp (log_sum /. float_of_int (List.length ids)) in
          d *. geo_mean
        end
      in
      current := Matrix.map !current adjust;
      iterate (n + 1)
    end
  in
  iterate 0

let nsfnet_nominal () =
  let g = Nsfnet.graph () in
  let routes = Route_table.build g in
  let target = Array.make (Graph.link_count g) 0. in
  List.iter
    (fun ((src, dst), lam) ->
      let l = Graph.find_link_exn g ~src ~dst in
      target.(l.Link.id) <- lam)
    Nsfnet.table1_loads;
  (routes, to_link_loads routes ~target)
