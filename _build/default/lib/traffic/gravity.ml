open Arnet_topology

let with_weights ~weights ~total =
  let n = Array.length weights in
  if n < 2 then invalid_arg "Gravity.with_weights: need >= 2 nodes";
  if total <= 0. || not (Float.is_finite total) then
    invalid_arg "Gravity.with_weights: bad total";
  Array.iter
    (fun w ->
      if w <= 0. || not (Float.is_finite w) then
        invalid_arg "Gravity.with_weights: weights must be positive")
    weights;
  let z = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then z := !z +. (weights.(i) *. weights.(j))
    done
  done;
  Matrix.make ~nodes:n (fun i j -> total *. weights.(i) *. weights.(j) /. !z)

let degree_weighted g ~total =
  let n = Graph.node_count g in
  let weights =
    Array.init n (fun v -> float_of_int (Stdlib.max 1 (Graph.degree_out g v)))
  in
  with_weights ~weights ~total

let uniform_total ~nodes ~total =
  with_weights ~weights:(Array.make nodes 1.) ~total
