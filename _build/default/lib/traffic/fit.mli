(** Reconstructing a traffic matrix from per-link primary loads.

    The paper's NSFNet traffic matrix was derived from unpublished
    Internet traffic projections and is not recoverable from the text —
    but Table 1 publishes the 30 per-link primary loads [Lambda^k] it
    induces under minimum-hop primaries.  Because Equation 1 is linear in
    [T], any nonnegative matrix reproducing those loads yields the same
    per-link offered traffic, which is what drives both the protection
    levels and the blocking behaviour (see DESIGN.md, substitution
    table).

    The fit is multiplicative (iterative proportional fitting): each
    demand is repeatedly scaled by the geometric mean of
    [target_k / current_k] over the links of its primary path.  Positive
    seeds stay positive; fixed points reproduce the targets exactly when
    the system is consistent. *)

open Arnet_paths

type result = {
  matrix : Matrix.t;  (** the fitted traffic matrix *)
  achieved : float array;  (** link loads it induces (Equation 1) *)
  max_relative_error : float;  (** vs targets, per {!Loads.link_load_error} *)
  iterations : int;
}

val to_link_loads :
  ?seed:Matrix.t ->
  ?tolerance:float ->
  ?max_iterations:int ->
  Route_table.t ->
  target:float array ->
  result
(** [to_link_loads routes ~target] fits a matrix whose primary link loads
    match [target] (indexed by link id).  Default seed: a degree-weighted
    gravity matrix of matching total; default [tolerance] [1e-6] on the
    maximum relative link-load error; default [max_iterations] [5_000].
    Stops at tolerance or iteration cap, whichever first (the result
    reports which quality was reached).
    @raise Invalid_argument on a size mismatch, a nonpositive target on a
    link that some primary path uses, or a seed with zero demand for a
    pair whose primary path crosses a positive-target link when no other
    pair can cover it. *)

val nsfnet_nominal : unit -> Route_table.t * result
(** Convenience: the NSFNet backbone with unrestricted route table and
    the matrix fitted to Table 1's nominal loads. *)
