(** Primary traffic demand per link — Equation 1 of the paper:

    {v Lambda^k = sum over (i,j) with k on P*(i,j) of T(i,j) v}

    The protection levels of Section 3.1 are computed from these loads;
    each node only needs the loads of its incident links, which it can
    estimate from passing primary call set-ups. *)

open Arnet_paths

val primary_link_loads : Route_table.t -> Matrix.t -> float array
(** [primary_link_loads routes t] sums, for every link id, the demands of
    all ordered pairs whose primary path crosses the link.  Pairs without
    a route contribute nothing.
    @raise Invalid_argument if matrix and graph sizes disagree. *)

val link_load_error : target:float array -> float array -> float
(** Maximum relative error [|got - target| / max target 1] over links —
    the fit-quality metric for {!Fit}. *)

val offered_to_pair_paths :
  Route_table.t -> Matrix.t -> Arnet_erlang.Reduced_load.route list
(** One reduced-load route per positive demand, following its primary
    path — input to the Erlang fixed point. *)
