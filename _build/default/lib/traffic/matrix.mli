(** Traffic matrices.

    [T(i, j)] is the demand in Erlangs of calls originating at node [i]
    and destined for node [j] (Section 2).  Matrices are immutable;
    load sweeps are expressed with {!scale}. *)

type t

val make : nodes:int -> (int -> int -> float) -> t
(** [make ~nodes f] fills entry [(i, j)] with [f i j] for [i <> j]; the
    diagonal is forced to 0.  Entries must be nonnegative and finite.
    @raise Invalid_argument otherwise. *)

val uniform : nodes:int -> demand:float -> t
(** Every ordered pair offered the same demand — the symmetric load of
    the quadrangle experiment. *)

val of_array : float array array -> t
(** Copies; rows must be square, diagonal zero, entries nonnegative. *)

val zero : nodes:int -> t

val nodes : t -> int
val get : t -> int -> int -> float
val total : t -> float
(** Sum of all demands — the network's total offered load. *)

val scale : t -> float -> t
(** Multiply every demand. Factor must be nonnegative and finite. *)

val add : t -> t -> t
(** Entrywise sum; sizes must agree. *)

val map : t -> (int -> int -> float -> float) -> t

val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a
(** Folds over ordered pairs [i <> j] in row-major order, including zero
    entries. *)

val iter_demands : t -> (int -> int -> float -> unit) -> unit
(** Visits only the strictly positive entries. *)

val demand_count : t -> int
(** Number of strictly positive entries. *)

val max_abs_diff : t -> t -> float

val pp : Format.formatter -> t -> unit
