lib/traffic/matrix.ml: Array Float Format
