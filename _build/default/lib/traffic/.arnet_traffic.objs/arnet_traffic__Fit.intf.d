lib/traffic/fit.mli: Arnet_paths Matrix Route_table
