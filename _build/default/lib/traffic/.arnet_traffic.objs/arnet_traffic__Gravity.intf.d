lib/traffic/gravity.mli: Arnet_topology Graph Matrix
