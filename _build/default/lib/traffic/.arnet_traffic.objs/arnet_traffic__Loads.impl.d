lib/traffic/loads.ml: Arnet_erlang Arnet_paths Arnet_topology Array Float Graph List Matrix Path Route_table
