lib/traffic/loads.mli: Arnet_erlang Arnet_paths Matrix Route_table
