lib/traffic/fit.ml: Arnet_paths Arnet_topology Array Float Graph Gravity Link List Loads Matrix Nsfnet Path Route_table
