lib/traffic/gravity.ml: Arnet_topology Array Float Graph Matrix Stdlib
