open Arnet_topology
open Arnet_paths

let primary_link_loads routes t =
  let g = Route_table.graph routes in
  if Graph.node_count g <> Matrix.nodes t then
    invalid_arg "Loads.primary_link_loads: size mismatch";
  let loads = Array.make (Graph.link_count g) 0. in
  Matrix.iter_demands t (fun i j d ->
      if Route_table.has_route routes ~src:i ~dst:j then
        let p = Route_table.primary routes ~src:i ~dst:j in
        List.iter
          (fun id -> loads.(id) <- loads.(id) +. d)
          (Path.link_ids p));
  loads

let link_load_error ~target got =
  if Array.length target <> Array.length got then
    invalid_arg "Loads.link_load_error: length mismatch";
  let err = ref 0. in
  Array.iteri
    (fun k t ->
      let scale = Float.max t 1. in
      err := Float.max !err (Float.abs (got.(k) -. t) /. scale))
    target;
  !err

let offered_to_pair_paths routes t =
  let acc = ref [] in
  Matrix.iter_demands t (fun i j d ->
      if Route_table.has_route routes ~src:i ~dst:j then begin
        let p = Route_table.primary routes ~src:i ~dst:j in
        acc :=
          { Arnet_erlang.Reduced_load.offered = d; links = Path.link_ids p }
          :: !acc
      end);
  List.rev !acc
