(** Gravity-model traffic matrices.

    [T(i, j)] proportional to [w_i * w_j] for node weights [w], a standard
    prior for backbone traffic when only aggregate information is known.
    Used to seed {!Fit} (which then reconciles the matrix with the
    published per-link loads of Table 1) and to generate synthetic
    workloads for tests and examples. *)

open Arnet_topology

val with_weights : weights:float array -> total:float -> Matrix.t
(** Matrix over [Array.length weights] nodes with
    [T(i,j) = total * w_i * w_j / Z] where [Z] normalizes over ordered
    pairs [i <> j].  Weights must be positive.
    @raise Invalid_argument otherwise or if [total <= 0]. *)

val degree_weighted : Graph.t -> total:float -> Matrix.t
(** Weights each node by its out-degree — hub nodes attract more
    traffic. *)

val uniform_total : nodes:int -> total:float -> Matrix.t
(** Equal weights: every ordered pair carries [total / (n (n-1))]. *)
