let full_mesh ~nodes ~capacity =
  if nodes < 2 then invalid_arg "Builders.full_mesh: need >= 2 nodes";
  let edges = ref [] in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~nodes ~capacity (List.rev !edges)

let ring ~nodes ~capacity =
  if nodes < 3 then invalid_arg "Builders.ring: need >= 3 nodes";
  let edges = List.init nodes (fun i -> (i, (i + 1) mod nodes)) in
  Graph.of_edges ~nodes ~capacity edges

let line ~nodes ~capacity =
  if nodes < 2 then invalid_arg "Builders.line: need >= 2 nodes";
  let edges = List.init (nodes - 1) (fun i -> (i, i + 1)) in
  Graph.of_edges ~nodes ~capacity edges

let star ~nodes ~capacity =
  if nodes < 2 then invalid_arg "Builders.star: need >= 2 nodes";
  let edges = List.init (nodes - 1) (fun i -> (0, i + 1)) in
  Graph.of_edges ~nodes ~capacity edges

let waxman ?(alpha = 0.7) ?(beta = 0.35) ~seed ~nodes ~capacity () =
  if nodes < 2 then invalid_arg "Builders.waxman: need >= 2 nodes";
  if alpha <= 0. || alpha > 1. then invalid_arg "Builders.waxman: bad alpha";
  if beta <= 0. then invalid_arg "Builders.waxman: bad beta";
  let st = Random.State.make [| seed; 0x77ab; seed lxor 0x1f2e3d |] in
  let xs = Array.init nodes (fun _ -> Random.State.float st 1.) in
  let ys = Array.init nodes (fun _ -> Random.State.float st 1.) in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let scale = beta *. sqrt 2. in
  let edges = Hashtbl.create (4 * nodes) in
  (* random spanning tree keeps the graph connected: attach each node to
     a uniformly chosen earlier node *)
  for v = 1 to nodes - 1 do
    let u = Random.State.int st v in
    Hashtbl.replace edges (min u v, max u v) ()
  done;
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      let p = alpha *. exp (-.dist i j /. scale) in
      if Random.State.float st 1. < p then Hashtbl.replace edges (i, j) ()
    done
  done;
  let pairs = Hashtbl.fold (fun e () acc -> e :: acc) edges [] in
  Graph.of_edges ~nodes ~capacity (List.sort compare pairs)

let grid ~rows ~cols ~capacity =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Builders.grid: too small";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~nodes:(rows * cols) ~capacity (List.rev !edges)
