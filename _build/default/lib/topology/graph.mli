(** Directed graphs of capacitated links.

    This is the network substrate for the whole library: nodes are dense
    integers [0 .. node_count-1], links are dense integers
    [0 .. link_count-1].  Graphs are immutable once built; link failures
    (Section 4.2.2 of the paper) are modeled by {!without_links}, which
    produces a new graph preserving node identities but renumbering links
    ({!Link.t.id} values change; use {!find_link} to re-locate a link by
    its endpoints). *)

type t

(** {1 Construction} *)

val create : ?labels:string array -> nodes:int -> Link.t list -> t
(** [create ~nodes links] builds a graph over nodes [0 .. nodes-1].  Link
    ids must be exactly [0 .. List.length links - 1] (in any order);
    endpoints must be valid node indices.  At most one link per ordered
    node pair. [labels], when given, must have length [nodes].
    @raise Invalid_argument on any violation. *)

val of_edges : ?labels:string array -> nodes:int -> capacity:int ->
  (int * int) list -> t
(** [of_edges ~nodes ~capacity pairs] builds a graph with a pair of
    opposite unidirectional links of the given capacity for every
    undirected edge in [pairs].  Duplicate pairs (in either order) are
    rejected. Link ids are assigned in the order given: edge [i] yields
    links [2i] (forward) and [2i+1] (backward). *)

val without_links : t -> (int * int) list -> t
(** [without_links g pairs] removes the directed links whose [(src, dst)]
    appear in [pairs].  Removing both directions of an edge takes two
    pairs.  Unknown pairs raise [Invalid_argument]. *)

val with_capacities : t -> (int * int * int) list -> t
(** [with_capacities g [(src, dst, c); ...]] returns a copy where each
    named directed link has its capacity replaced by [c]. *)

(** {1 Queries} *)

val node_count : t -> int
val link_count : t -> int
val label : t -> int -> string
(** [label g v] is the display label of node [v] (defaults to
    [string_of_int v]). *)

val link : t -> int -> Link.t
(** [link g i] is the link with id [i]. @raise Invalid_argument if out of
    range. *)

val links : t -> Link.t array
(** All links, indexed by id.  The returned array is fresh. *)

val find_link : t -> src:int -> dst:int -> Link.t option
(** Locate a link by its endpoints. *)

val find_link_exn : t -> src:int -> dst:int -> Link.t
(** @raise Not_found when absent. *)

val out_links : t -> int -> Link.t list
(** [out_links g v] are the links leaving node [v], sorted by destination. *)

val in_links : t -> int -> Link.t list
(** [in_links g v] are the links entering node [v], sorted by source. *)

val successors : t -> int -> int list
(** [successors g v] are the neighbour nodes reachable by one link from
    [v], ascending. *)

val degree_out : t -> int -> int
val degree_in : t -> int -> int

val is_symmetric : t -> bool
(** [true] when every link has an opposite-direction twin of the same
    capacity. *)

val is_strongly_connected : t -> bool

val total_capacity : t -> int
(** Sum of all link capacities. *)

val fold_links : (Link.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_links : (Link.t -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
(** One line per link, for debugging and the fig5 dump. *)

val to_dot : t -> string
(** Graphviz rendering (pairs of opposite links collapse to one
    undirected edge when capacities match). *)
