type t = {
  nodes : int;
  labels : string array;
  links : Link.t array;
  out_adj : Link.t list array;  (* per node, sorted by dst *)
  in_adj : Link.t list array;  (* per node, sorted by src *)
  by_pair : (int * int, Link.t) Hashtbl.t;
}

let node_count g = g.nodes
let link_count g = Array.length g.links
let label g v =
  if v < 0 || v >= g.nodes then invalid_arg "Graph.label: bad node";
  g.labels.(v)

let create ?labels ~nodes link_list =
  if nodes <= 0 then invalid_arg "Graph.create: need at least one node";
  let labels =
    match labels with
    | None -> Array.init nodes string_of_int
    | Some a ->
      if Array.length a <> nodes then
        invalid_arg "Graph.create: labels length mismatch";
      Array.copy a
  in
  let m = List.length link_list in
  let links = Array.make m (Link.make ~id:0 ~src:0 ~dst:1 ~capacity:0) in
  let seen_id = Array.make m false in
  let by_pair = Hashtbl.create (2 * m) in
  let place (l : Link.t) =
    if l.Link.id >= m then invalid_arg "Graph.create: link id out of range";
    if seen_id.(l.Link.id) then invalid_arg "Graph.create: duplicate link id";
    if l.Link.src >= nodes || l.Link.dst >= nodes then
      invalid_arg "Graph.create: link endpoint out of range";
    if Hashtbl.mem by_pair (l.Link.src, l.Link.dst) then
      invalid_arg "Graph.create: duplicate directed link";
    seen_id.(l.Link.id) <- true;
    links.(l.Link.id) <- l;
    Hashtbl.add by_pair (l.Link.src, l.Link.dst) l
  in
  List.iter place link_list;
  let out_adj = Array.make nodes [] and in_adj = Array.make nodes [] in
  Array.iter
    (fun (l : Link.t) ->
      out_adj.(l.Link.src) <- l :: out_adj.(l.Link.src);
      in_adj.(l.Link.dst) <- l :: in_adj.(l.Link.dst))
    links;
  let by_dst (a : Link.t) (b : Link.t) = compare a.Link.dst b.Link.dst in
  let by_src (a : Link.t) (b : Link.t) = compare a.Link.src b.Link.src in
  Array.iteri (fun i l -> out_adj.(i) <- List.sort by_dst l) out_adj;
  Array.iteri (fun i l -> in_adj.(i) <- List.sort by_src l) in_adj;
  { nodes; labels; links; out_adj; in_adj; by_pair }

let of_edges ?labels ~nodes ~capacity pairs =
  let seen = Hashtbl.create 16 in
  let add_edge (acc, id) (a, b) =
    if a = b then invalid_arg "Graph.of_edges: self-loop";
    let key = (min a b, max a b) in
    if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
    Hashtbl.add seen key ();
    let fwd = Link.make ~id ~src:a ~dst:b ~capacity in
    let bwd = Link.make ~id:(id + 1) ~src:b ~dst:a ~capacity in
    (bwd :: fwd :: acc, id + 2)
  in
  let links, _ = List.fold_left add_edge ([], 0) pairs in
  create ?labels ~nodes (List.rev links)

let link g i =
  if i < 0 || i >= Array.length g.links then invalid_arg "Graph.link: bad id";
  g.links.(i)

let links g = Array.copy g.links
let find_link g ~src ~dst = Hashtbl.find_opt g.by_pair (src, dst)

let find_link_exn g ~src ~dst =
  match find_link g ~src ~dst with Some l -> l | None -> raise Not_found

let out_links g v =
  if v < 0 || v >= g.nodes then invalid_arg "Graph.out_links: bad node";
  g.out_adj.(v)

let in_links g v =
  if v < 0 || v >= g.nodes then invalid_arg "Graph.in_links: bad node";
  g.in_adj.(v)

let successors g v = List.map (fun (l : Link.t) -> l.Link.dst) (out_links g v)
let degree_out g v = List.length (out_links g v)
let degree_in g v = List.length (in_links g v)

let without_links g pairs =
  let doomed = Hashtbl.create 8 in
  let mark (src, dst) =
    match find_link g ~src ~dst with
    | None ->
      invalid_arg
        (Printf.sprintf "Graph.without_links: no link %d->%d" src dst)
    | Some l -> Hashtbl.replace doomed l.Link.id ()
  in
  List.iter mark pairs;
  let keep =
    Array.to_list g.links
    |> List.filter (fun (l : Link.t) -> not (Hashtbl.mem doomed l.Link.id))
  in
  let relabel id (l : Link.t) =
    Link.make ~id ~src:l.Link.src ~dst:l.Link.dst ~capacity:l.Link.capacity
  in
  create ~labels:g.labels ~nodes:g.nodes (List.mapi relabel keep)

let with_capacities g updates =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (src, dst, c) ->
      if c < 0 then invalid_arg "Graph.with_capacities: negative capacity";
      Hashtbl.replace tbl (src, dst) c)
    updates;
  let update (l : Link.t) =
    match Hashtbl.find_opt tbl (l.Link.src, l.Link.dst) with
    | None -> l
    | Some c ->
      Hashtbl.remove tbl (l.Link.src, l.Link.dst);
      Link.make ~id:l.Link.id ~src:l.Link.src ~dst:l.Link.dst ~capacity:c
  in
  let links = Array.to_list g.links |> List.map update in
  if Hashtbl.length tbl > 0 then
    invalid_arg "Graph.with_capacities: unknown link";
  create ~labels:g.labels ~nodes:g.nodes links

let is_symmetric g =
  Array.for_all
    (fun (l : Link.t) ->
      match find_link g ~src:l.Link.dst ~dst:l.Link.src with
      | Some r -> r.Link.capacity = l.Link.capacity
      | None -> false)
    g.links

let is_strongly_connected g =
  (* two BFS sweeps: forward reachability and backward reachability from 0 *)
  let reachable adj =
    let seen = Array.make g.nodes false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            Queue.add w queue
          end)
        (adj v)
    done;
    !count = g.nodes
  in
  let fwd v = List.map (fun (l : Link.t) -> l.Link.dst) g.out_adj.(v) in
  let bwd v = List.map (fun (l : Link.t) -> l.Link.src) g.in_adj.(v) in
  g.nodes = 1 || (reachable fwd && reachable bwd)

let fold_links f g init = Array.fold_left (fun acc l -> f l acc) init g.links
let iter_links f g = Array.iter f g.links
let total_capacity g = fold_links (fun l acc -> acc + l.Link.capacity) g 0

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d links" g.nodes
    (Array.length g.links);
  Array.iter
    (fun (l : Link.t) ->
      Format.fprintf ppf "@,  %s -> %s  C=%d" g.labels.(l.Link.src)
        g.labels.(l.Link.dst) l.Link.capacity)
    g.links;
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph network {\n";
  Array.iteri
    (fun v lbl -> Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v lbl))
    g.labels;
  let emitted = Hashtbl.create 16 in
  let emit (l : Link.t) =
    let twin = find_link g ~src:l.Link.dst ~dst:l.Link.src in
    match twin with
    | Some r when r.Link.capacity = l.Link.capacity ->
      let key = (min l.Link.src l.Link.dst, max l.Link.src l.Link.dst) in
      if not (Hashtbl.mem emitted key) then begin
        Hashtbl.add emitted key ();
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [dir=both, label=\"%d\"];\n" l.Link.src
             l.Link.dst l.Link.capacity)
      end
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" l.Link.src l.Link.dst
           l.Link.capacity)
  in
  Array.iter emit g.links;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
