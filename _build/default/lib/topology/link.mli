(** Directed, capacitated links.

    A link carries calls in one direction only.  The paper models every
    physical connection as a pair of unidirectional links; builders in
    {!Builders} follow that convention.  Capacity is expressed in calls:
    all calls demand one unit of bandwidth (Section 2 of the paper), so a
    155 Mb/s link with 100 Mb/s reserved for rate-based traffic and 1 Mb/s
    calls has capacity 100. *)

type t = private {
  id : int;  (** index of the link in its graph, [0 .. m-1] *)
  src : int;  (** origin node *)
  dst : int;  (** destination node *)
  capacity : int;  (** simultaneous calls the link can carry *)
}

val make : id:int -> src:int -> dst:int -> capacity:int -> t
(** [make ~id ~src ~dst ~capacity] builds a link.
    @raise Invalid_argument if [capacity < 0], [src = dst], or any index is
    negative. *)

val reversed : t -> id:int -> t
(** [reversed l ~id] is the link carrying traffic in the opposite
    direction, with a fresh id. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
