lib/topology/link.ml: Format Stdlib
