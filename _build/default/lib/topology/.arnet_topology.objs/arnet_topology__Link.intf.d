lib/topology/link.mli: Format
