lib/topology/graph.ml: Array Buffer Format Hashtbl Link List Printf Queue
