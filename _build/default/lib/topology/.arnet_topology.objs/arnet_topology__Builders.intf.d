lib/topology/builders.mli: Graph
