lib/topology/builders.ml: Array Float Graph Hashtbl List Random
