lib/topology/nsfnet.mli: Graph
