lib/topology/nsfnet.ml: Graph List
