type t = { id : int; src : int; dst : int; capacity : int }

let make ~id ~src ~dst ~capacity =
  if capacity < 0 then invalid_arg "Link.make: negative capacity";
  if src = dst then invalid_arg "Link.make: self-loop";
  if id < 0 || src < 0 || dst < 0 then invalid_arg "Link.make: negative index";
  { id; src; dst; capacity }

let reversed l ~id = make ~id ~src:l.dst ~dst:l.src ~capacity:l.capacity
let equal a b = a.id = b.id && a.src = b.src && a.dst = b.dst && a.capacity = b.capacity
let compare a b = Stdlib.compare (a.src, a.dst, a.id) (b.src, b.dst, b.id)
let pp ppf l = Format.fprintf ppf "%d->%d(#%d,C=%d)" l.src l.dst l.id l.capacity
let to_string l = Format.asprintf "%a" pp l
