(** Standard topologies used in the paper's experiments and tests.

    Every builder produces pairs of opposite unidirectional links of equal
    capacity, matching the paper's network model. *)

val full_mesh : nodes:int -> capacity:int -> Graph.t
(** Fully-connected network: every ordered node pair gets a link.  The
    paper's quadrangle experiment (Section 4.1) is [full_mesh ~nodes:4]. *)

val ring : nodes:int -> capacity:int -> Graph.t
(** Cycle 0-1-...-(n-1)-0.  Needs [nodes >= 3]. *)

val line : nodes:int -> capacity:int -> Graph.t
(** Path graph 0-1-...-(n-1). Needs [nodes >= 2]. *)

val star : nodes:int -> capacity:int -> Graph.t
(** Node 0 connected to every other node. Needs [nodes >= 2]. *)

val grid : rows:int -> cols:int -> capacity:int -> Graph.t
(** [rows * cols] lattice with 4-neighbour edges; node [(r, c)] has index
    [r * cols + c]. *)

val waxman :
  ?alpha:float -> ?beta:float -> seed:int -> nodes:int -> capacity:int ->
  unit -> Graph.t
(** Waxman random topology: nodes placed uniformly in the unit square;
    each node pair is joined with probability
    [alpha * exp (-distance / (beta * sqrt 2))] (defaults
    [alpha = 0.7], [beta = 0.35] — sparse mesh territory).  A random
    spanning tree is always included, so the result is connected.
    Deterministic in [seed].  Used to check that the scheme's behaviour
    generalizes beyond the paper's two topologies.
    @raise Invalid_argument unless [nodes >= 2], parameters positive
    and [alpha <= 1]. *)
