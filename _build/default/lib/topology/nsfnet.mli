(** The 12-node NSFNet T3 backbone model of Section 4.2.

    The adjacency, per-link capacities (C = 100 calls of 1 Mb/s over the
    100 Mb/s reserved share of a 155 Mb/s link) and nominal primary loads
    come directly from Table 1 of the paper.  The city labels are
    illustrative — the evaluation depends only on indices, adjacency,
    capacities and loads. *)

val node_count : int
(** 12. *)

val edges : (int * int) list
(** The 15 undirected edges of Figure 5 / Table 1. *)

val capacity : int
(** 100 calls per directed link under the paper's forecast. *)

val graph : unit -> Graph.t
(** Fresh copy of the backbone graph: 12 nodes, 30 directed links. *)

val labels : string array
(** Illustrative node names, length 12. *)

val table1_loads : ((int * int) * float) list
(** [((src, dst), lambda)] — the nominal primary traffic demand in
    Erlangs on each directed link, as published in Table 1 (rounded to
    integers there; stored as floats here). *)

val table1_protection : ((int * int) * (int * int)) list
(** [((src, dst), (r_h6, r_h11))] — the state-protection levels the
    paper reports for H = 6 and H = 11 under the nominal load. *)

val load_of : src:int -> dst:int -> float
(** Table-1 nominal load of a directed link.
    @raise Not_found for non-links. *)
