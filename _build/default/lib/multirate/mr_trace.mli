(** Multi-class replayable workloads. *)

open Arnet_traffic

type workload = private {
  classes : Call_class.t array;
  demands : Matrix.t array;  (** per class, demand in *calls* (Erlangs) *)
}

val workload : (Call_class.t * Matrix.t) list -> workload
(** @raise Invalid_argument on empty input or mismatched matrix sizes. *)

val nodes : workload -> int

val offered_bandwidth : workload -> float
(** Total offered bandwidth load: [sum_c bandwidth_c * total demand_c]. *)

type call = {
  time : float;
  src : int;
  dst : int;
  holding : float;
  class_index : int;
  u : float;
}

val generate :
  rng:Arnet_sim.Rng.t -> duration:float -> workload -> call array
(** Superposed Poisson arrivals over classes and pairs, holding times
    exponential with each class's mean; sorted by time.
    @raise Invalid_argument when total demand is zero. *)
