lib/multirate/mr_engine.mli: Arnet_paths Arnet_topology Graph Mr_trace Path
