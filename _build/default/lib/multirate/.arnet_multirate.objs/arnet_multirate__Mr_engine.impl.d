lib/multirate/mr_engine.ml: Arnet_paths Arnet_sim Arnet_topology Array Bfs Call_class Event_queue Graph Hashtbl Link List Mr_trace Path Rng
