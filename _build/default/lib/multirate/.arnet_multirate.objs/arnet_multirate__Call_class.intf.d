lib/multirate/call_class.mli:
