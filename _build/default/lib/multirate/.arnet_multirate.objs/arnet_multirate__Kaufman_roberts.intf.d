lib/multirate/kaufman_roberts.mli:
