lib/multirate/mr_scheme.ml: Arnet_core Arnet_paths Arnet_topology Arnet_traffic Array Call_class Graph Link List Matrix Mr_engine Mr_trace Path Route_table
