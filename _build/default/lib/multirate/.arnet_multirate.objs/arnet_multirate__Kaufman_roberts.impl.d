lib/multirate/kaufman_roberts.ml: Array Float List
