lib/multirate/mr_trace.ml: Arnet_sim Arnet_traffic Array Call_class List Matrix Rng
