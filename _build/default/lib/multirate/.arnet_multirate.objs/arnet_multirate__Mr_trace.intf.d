lib/multirate/mr_trace.mli: Arnet_sim Arnet_traffic Call_class Matrix
