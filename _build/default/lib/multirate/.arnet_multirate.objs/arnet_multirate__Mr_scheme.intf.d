lib/multirate/mr_scheme.mli: Arnet_paths Mr_engine Mr_trace Route_table
