lib/multirate/call_class.ml: Float Printf
