(** Controlled alternate routing for multi-rate calls.

    Extension of the paper's scheme to its declared future work.  The
    admission rules generalize naturally: a link accepts a *primary*
    class-[c] call while [occupancy + bandwidth_c <= C], and an
    *alternate-routed* one only while
    [occupancy + bandwidth_c <= C - r] — the protected band now counts
    bandwidth units rather than calls.

    Protection levels come from the single-rate machinery applied to the
    link's offered *bandwidth* load (sum over classes of
    [bandwidth_c * Lambda_c]), with capacity in units.  This is a
    heuristic, not a theorem: Theorem 1's chain analysis is per-call.
    The multi-rate experiment checks the guarantee empirically
    (controlled never worse than single-path on bandwidth blocking). *)

open Arnet_paths

val bandwidth_loads : Route_table.t -> Mr_trace.workload -> float array
(** Per link: offered bandwidth units per unit time along primaries —
    the multi-rate Equation 1. *)

val protection_levels :
  Route_table.t -> Mr_trace.workload -> h:int -> int array
(** Section 3.1 levels on the bandwidth loads. *)

val single_path :
  Route_table.t -> Mr_trace.workload -> Mr_engine.policy

val uncontrolled :
  Route_table.t -> Mr_trace.workload -> Mr_engine.policy

val controlled :
  reserves:int array -> Route_table.t -> Mr_trace.workload -> Mr_engine.policy

val controlled_auto :
  ?h:int -> Route_table.t -> Mr_trace.workload -> Mr_engine.policy
