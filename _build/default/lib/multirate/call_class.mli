(** Call classes for the multi-rate extension.

    The paper's preliminary study assumes identical calls and lists
    multiple call types as future work (Section 1).  A class is a
    Poisson stream with its own bandwidth demand (in the same integer
    units as link capacity) and mean holding time. *)

type t = private {
  name : string;
  bandwidth : int;  (** units of capacity reserved per call *)
  mean_holding : float;
}

val make : ?name:string -> ?mean_holding:float -> bandwidth:int -> unit -> t
(** @raise Invalid_argument if [bandwidth < 1] or [mean_holding <= 0]. *)

val narrowband : t
(** 1 unit, unit holding — the paper's prototype call. *)

val wideband : t
(** 6 units, unit holding — a video-conference-like class. *)
