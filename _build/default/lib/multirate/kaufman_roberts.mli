(** The Kaufman-Roberts recursion: exact occupancy distribution of a
    single link shared by independent Poisson classes under complete
    sharing.

    For classes [k] with offered load [a_k] Erlangs and bandwidth [b_k],
    the stationary probability [q(j)] that [j] capacity units are busy
    satisfies

    {v j * q(j) = sum_k a_k * b_k * q(j - b_k) v}

    and class [k]'s blocking is [sum_{j > C - b_k} q(j)].  With a single
    class of bandwidth 1 this reduces to the Erlang distribution, which
    the tests exploit.  This is the natural multi-rate analogue of the
    Erlang machinery the paper's protection levels are built on. *)

type class_load = { offered : float; bandwidth : int }

val distribution : capacity:int -> class_load list -> float array
(** [q(0) .. q(capacity)], summing to 1.
    @raise Invalid_argument on empty classes, nonpositive loads,
    bandwidths outside [1 .. capacity], or [capacity < 1]. *)

val class_blocking : capacity:int -> class_load list -> float list
(** Per class (input order): probability an arriving call of that class
    finds fewer than [bandwidth] free units. *)

val mean_occupied : capacity:int -> class_load list -> float
(** Expected busy capacity units. *)

val total_carried_load : capacity:int -> class_load list -> float
(** [sum_k a_k b_k (1 - B_k)] — carried bandwidth load. *)

val reservation_blocking :
  capacity:int -> reserve:int -> class_load list -> float list
(** Per-class blocking when the top [reserve] units are barred to *all*
    of these classes (the protected-link view of alternate-routed
    multi-rate traffic): computed exactly on the truncated chain, i.e.
    [class_blocking ~capacity:(capacity - reserve)].  This is the
    admission rule the multi-rate controlled scheme enforces. *)
