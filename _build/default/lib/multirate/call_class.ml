type t = { name : string; bandwidth : int; mean_holding : float }

let make ?name ?(mean_holding = 1.) ~bandwidth () =
  if bandwidth < 1 then invalid_arg "Call_class.make: bandwidth < 1";
  if mean_holding <= 0. || not (Float.is_finite mean_holding) then
    invalid_arg "Call_class.make: bad mean holding";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "b%d" bandwidth
  in
  { name; bandwidth; mean_holding }

let narrowband = make ~name:"narrowband" ~bandwidth:1 ()
let wideband = make ~name:"wideband" ~bandwidth:6 ()
