open Arnet_topology
open Arnet_paths
open Arnet_traffic

let bandwidth_loads routes workload =
  let g = Route_table.graph routes in
  let loads = Array.make (Graph.link_count g) 0. in
  Array.iteri
    (fun ci matrix ->
      let b =
        float_of_int workload.Mr_trace.classes.(ci).Call_class.bandwidth
      in
      Matrix.iter_demands matrix (fun src dst d ->
          if Route_table.has_route routes ~src ~dst then
            List.iter
              (fun k -> loads.(k) <- loads.(k) +. (b *. d))
              (Path.link_ids (Route_table.primary routes ~src ~dst))))
    workload.Mr_trace.demands;
  loads

let capacities_of routes =
  let g = Route_table.graph routes in
  Array.map (fun (l : Link.t) -> l.capacity) (Graph.links g)

let protection_levels routes workload ~h =
  let capacities = capacities_of routes in
  let loads = bandwidth_loads routes workload in
  Arnet_core.Protection.levels_of_loads ~capacities ~loads ~h

let path_fits ~capacities ~occupancy ~headroom p bandwidth =
  let ids = p.Path.link_ids in
  let n = Array.length ids in
  let rec go i =
    i >= n
    ||
    let k = ids.(i) in
    occupancy.(k) + bandwidth <= capacities.(k) - headroom.(k) && go (i + 1)
  in
  go 0

let make_policy ~name ~allow_alternates ~reserves routes workload =
  let capacities = capacities_of routes in
  let zero = Array.make (Array.length capacities) 0 in
  let decide ~occupancy ~call =
    let src = call.Mr_trace.src and dst = call.Mr_trace.dst in
    if not (Route_table.has_route routes ~src ~dst) then Mr_engine.Lost
    else begin
      let bandwidth =
        workload.Mr_trace.classes.(call.Mr_trace.class_index)
          .Call_class.bandwidth
      in
      let primary = Route_table.primary routes ~src ~dst in
      if path_fits ~capacities ~occupancy ~headroom:zero primary bandwidth
      then Mr_engine.Routed primary
      else if not allow_alternates then Mr_engine.Lost
      else begin
        let fits p =
          path_fits ~capacities ~occupancy ~headroom:reserves p bandwidth
        in
        match
          List.find_opt fits
            (Route_table.alternates_excluding routes ~src ~dst primary)
        with
        | Some p -> Mr_engine.Routed p
        | None -> Mr_engine.Lost
      end
    end
  in
  { Mr_engine.name; decide }

let single_path routes workload =
  let reserves = Array.make (Array.length (capacities_of routes)) 0 in
  make_policy ~name:"mr-single-path" ~allow_alternates:false ~reserves routes
    workload

let uncontrolled routes workload =
  let reserves = Array.make (Array.length (capacities_of routes)) 0 in
  make_policy ~name:"mr-uncontrolled" ~allow_alternates:true ~reserves routes
    workload

let controlled ~reserves routes workload =
  let capacities = capacities_of routes in
  if Array.length reserves <> Array.length capacities then
    invalid_arg "Mr_scheme.controlled: reserves length mismatch";
  Array.iteri
    (fun k r ->
      if r < 0 || r > capacities.(k) then
        invalid_arg "Mr_scheme.controlled: reserve out of range")
    reserves;
  make_policy ~name:"mr-controlled" ~allow_alternates:true ~reserves routes
    workload

let controlled_auto ?h routes workload =
  let h = match h with None -> Route_table.h routes | Some h -> h in
  controlled ~reserves:(protection_levels routes workload ~h) routes workload
