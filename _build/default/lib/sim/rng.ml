type t = { seed : int; state : Random.State.t }

let make_state seed =
  Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

let create ~seed = { seed; state = make_state seed }

let substream t name =
  let h = Hashtbl.hash (t.seed, name) in
  { seed = h; state = make_state h }

let float t bound = Random.State.float t.state bound
let uniform t = Random.State.float t.state 1.
let int t bound = Random.State.int t.state bound

let exponential t ~rate =
  if rate <= 0. || not (Float.is_finite rate) then
    invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. uniform t (* in (0, 1] *) in
  -.log u /. rate

let poisson t ~mean =
  if mean <= 0. || mean > 700. then invalid_arg "Rng.poisson: bad mean";
  let l = exp (-.mean) in
  let rec draw k p =
    let p = p *. uniform t in
    if p <= l then k else draw (k + 1) p
  in
  draw 0 1.
