open Arnet_topology

type record = {
  time : float;
  src : int;
  dst : int;
  routed_hops : int option;
}

type t = {
  capacities : int array;
  mutable samples : int;
  occupancy_sum : float array;
  peak : int array;
  hop_counts : int array;  (* index 0 = lost *)
  log_limit : int;
  mutable log_rev : record list;
  mutable logged : int;
}

let create ?(log_limit = 0) g =
  if log_limit < 0 then invalid_arg "Instrument.create: negative log limit";
  let m = Graph.link_count g in
  let capacities = Array.make m 0 in
  Graph.iter_links (fun l -> capacities.(l.Link.id) <- l.Link.capacity) g;
  { capacities;
    samples = 0;
    occupancy_sum = Array.make m 0.;
    peak = Array.make m 0;
    hop_counts = Array.make (Graph.node_count g) 0;
    log_limit;
    log_rev = [];
    logged = 0 }

let observe t ~occupancy ~(call : Trace.call) outcome =
  t.samples <- t.samples + 1;
  Array.iteri
    (fun k occ ->
      t.occupancy_sum.(k) <- t.occupancy_sum.(k) +. float_of_int occ;
      if occ > t.peak.(k) then t.peak.(k) <- occ)
    occupancy;
  let routed_hops =
    match outcome with
    | Engine.Lost ->
      t.hop_counts.(0) <- t.hop_counts.(0) + 1;
      None
    | Engine.Routed p ->
      let h = Arnet_paths.Path.hops p in
      if h < Array.length t.hop_counts then
        t.hop_counts.(h) <- t.hop_counts.(h) + 1;
      Some h
  in
  if t.logged < t.log_limit then begin
    t.logged <- t.logged + 1;
    t.log_rev <-
      { time = call.Trace.time;
        src = call.Trace.src;
        dst = call.Trace.dst;
        routed_hops }
      :: t.log_rev
  end

let wrap t (policy : Engine.policy) =
  { policy with
    Engine.decide =
      (fun ~occupancy ~call ->
        let outcome = policy.Engine.decide ~occupancy ~call in
        observe t ~occupancy ~call outcome;
        outcome) }

let samples t = t.samples

let mean_occupancy t =
  let n = float_of_int (Stdlib.max 1 t.samples) in
  Array.map (fun s -> s /. n) t.occupancy_sum

let mean_utilization t =
  let mean = mean_occupancy t in
  Array.mapi
    (fun k m ->
      if t.capacities.(k) = 0 then 0. else m /. float_of_int t.capacities.(k))
    mean

let peak_occupancy t = Array.copy t.peak
let hop_histogram t = Array.copy t.hop_counts
let log t = List.rev t.log_rev
