type t = {
  window : float;
  offered_bins : int array;
  blocked_bins : int array;
}

type window = { start : float; offered : int; blocked : int }

let create ~window ~duration =
  if window <= 0. || window > duration then
    invalid_arg "Time_series.create: bad window";
  let bins = int_of_float (ceil (duration /. window)) in
  { window; offered_bins = Array.make bins 0; blocked_bins = Array.make bins 0 }

let wrap t (policy : Engine.policy) =
  let bins = Array.length t.offered_bins in
  { policy with
    Engine.decide =
      (fun ~occupancy ~call ->
        let outcome = policy.Engine.decide ~occupancy ~call in
        let bin =
          Stdlib.min (bins - 1)
            (int_of_float (call.Trace.time /. t.window))
        in
        if bin >= 0 then begin
          t.offered_bins.(bin) <- t.offered_bins.(bin) + 1;
          match outcome with
          | Engine.Lost -> t.blocked_bins.(bin) <- t.blocked_bins.(bin) + 1
          | Engine.Routed _ -> ()
        end;
        outcome) }

let windows t =
  Array.to_list
    (Array.mapi
       (fun i o ->
         { start = float_of_int i *. t.window;
           offered = o;
           blocked = t.blocked_bins.(i) })
       t.offered_bins)

let blocking_series t =
  List.map
    (fun w ->
      ( w.start,
        if w.offered = 0 then 0.
        else float_of_int w.blocked /. float_of_int w.offered ))
    (windows t)

let peak_blocking t =
  List.fold_left (fun acc (_, b) -> Float.max acc b) 0. (blocking_series t)
