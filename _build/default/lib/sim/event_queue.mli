(** Binary-heap priority queue keyed by simulated time.

    The discrete-event core: departures are queued here, arrivals come
    pre-sorted from the {!Trace}.  Pops are in nondecreasing time order;
    ties pop in unspecified (but deterministic) order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument when [time] is not finite. *)

val peek_time : 'a t -> float option
(** Earliest queued time without removing it. *)

val pop : 'a t -> (float * 'a) option
val pop_until : 'a t -> time:float -> f:(float -> 'a -> unit) -> unit
(** Pops and applies [f] to every event with time [<= time], in order. *)

val clear : 'a t -> unit
