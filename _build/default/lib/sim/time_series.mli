(** Windowed blocking time series.

    For nonstationary experiments (focused overloads, surges) the
    interesting quantity is blocking *over time*, not the run average.
    A recorder wraps a policy — decisions are unchanged — and bins
    offered/blocked counts into fixed windows. *)

type t

type window = {
  start : float;
  offered : int;
  blocked : int;
}

val create : window:float -> duration:float -> t
(** Windows [k*window, (k+1)*window) covering [0, duration).
    @raise Invalid_argument unless [0 < window <= duration]. *)

val wrap : t -> Engine.policy -> Engine.policy
(** One recorder per run. *)

val windows : t -> window list
(** In time order, one entry per window (empty windows included). *)

val blocking_series : t -> (float * float) list
(** [(window start, blocking)] with 0 for empty windows. *)

val peak_blocking : t -> float
