type 'a t = { mutable data : (float * 'a) array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0
let clear h = h.size <- 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let push h ~time x =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: bad time";
  if h.size = Array.length h.data then begin
    let cap = Stdlib.max 16 (2 * h.size) in
    let data = Array.make cap (time, x) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- (time, x);
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if fst h.data.(!i) < fst h.data.(parent) then begin
      swap h !i parent;
      i := parent
    end
    else continue := false
  done

let peek_time h = if h.size = 0 then None else Some (fst h.data.(0))

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end

let pop_until h ~time ~f =
  let continue = ref true in
  while !continue do
    match peek_time h with
    | Some t when t <= time -> begin
      match pop h with
      | Some (t, x) -> f t x
      | None -> continue := false
    end
    | _ -> continue := false
  done
