lib/sim/engine.mli: Arnet_paths Arnet_topology Arnet_traffic Graph Path Stats Trace
