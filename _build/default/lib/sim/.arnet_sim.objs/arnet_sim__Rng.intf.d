lib/sim/rng.mli:
