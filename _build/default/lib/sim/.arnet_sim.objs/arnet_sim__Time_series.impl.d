lib/sim/time_series.ml: Array Engine Float List Stdlib Trace
