lib/sim/trace.mli: Arnet_traffic Matrix Rng
