lib/sim/time_series.mli: Engine
