lib/sim/rng.ml: Float Hashtbl Random
