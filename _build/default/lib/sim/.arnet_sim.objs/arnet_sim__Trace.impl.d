lib/sim/trace.ml: Arnet_traffic Array Float List Matrix Rng
