lib/sim/stats.mli:
