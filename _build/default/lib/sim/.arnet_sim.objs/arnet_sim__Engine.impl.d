lib/sim/engine.ml: Arnet_paths Arnet_topology Arnet_traffic Array Event_queue Graph Link List Path Rng Stats Trace
