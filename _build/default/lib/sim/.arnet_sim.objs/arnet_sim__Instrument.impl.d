lib/sim/instrument.ml: Arnet_paths Arnet_topology Array Engine Graph Link List Stdlib Trace
