lib/sim/instrument.mli: Arnet_topology Engine Graph
