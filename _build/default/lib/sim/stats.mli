(** Simulation statistics.

    One {!t} is accumulated per run over the measurement window (after
    warm-up); the record functions mutate in place because they sit on
    the simulator's per-call hot path.  Replication helpers aggregate
    across seeds the way the paper does (10 seeds, mean curves). *)

type t = {
  nodes : int;
  mutable offered : int;  (** calls offered in the window *)
  mutable blocked : int;  (** calls lost *)
  mutable carried_primary : int;  (** completed on their primary path *)
  mutable carried_alternate : int;  (** completed on an alternate path *)
  mutable alternate_hops : int;  (** total hops over alternate-routed calls *)
  offered_od : int array;  (** per ordered pair, row-major [src*n + dst] *)
  blocked_od : int array;
}

val empty : nodes:int -> t

val record_offered : t -> src:int -> dst:int -> unit
val record_blocked : t -> src:int -> dst:int -> unit
val record_primary : t -> unit
val record_alternate : t -> hops:int -> unit

val blocking : t -> float
(** Network average blocking [blocked / offered]; 0 when nothing was
    offered. *)

val od_blocking : t -> src:int -> dst:int -> float option
(** Per-pair blocking; [None] when the pair offered no calls. *)

val alternate_fraction : t -> float
(** Fraction of carried calls that used an alternate path. *)

val merge : t -> t -> t
(** Pool two windows into a fresh accumulator (same node count). *)

(** {1 Across-seed aggregation} *)

type summary = {
  mean : float;
  std_error : float;  (** of the mean; 0 for a single replication *)
  replications : int;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val confidence_95 : summary -> float * float
(** Two-sided 95% Student-t interval around the mean (the right small-n
    treatment for the paper's 10-seed replications).  Degenerates to the
    point [(mean, mean)] for a single replication. *)

val blocking_summary : t list -> summary
(** Summary of per-run network blocking across replications. *)

(** {1 Fairness (Section 4.2.2, "Blocking on an O-D pair basis")} *)

type skew = {
  min_blocking : float;
  max_blocking : float;
  mean_blocking : float;
  coefficient_of_variation : float;
  (** std-dev of per-pair blocking over its mean; 0 when perfectly fair *)
}

val od_skew : t -> skew
(** Computed over pairs that offered at least one call.
    @raise Invalid_argument when no pair offered traffic. *)
