(** Deterministic random streams for the call-by-call simulator.

    Thin wrapper over [Random.State] with the distributions the
    simulator needs and with named substreams, so that e.g. the arrival
    process and any routing randomness are statistically independent yet
    each reproducible from the master seed. *)

type t

val create : seed:int -> t

val substream : t -> string -> t
(** [substream t name] derives an independent stream determined entirely
    by the master seed and [name]. *)

val float : t -> float -> float
(** [float t bound] in [\[0, bound)]. *)

val uniform : t -> float
(** In [\[0, 1)]. *)

val int : t -> int -> int

val exponential : t -> rate:float -> float
(** Exponentially distributed with the given rate (mean [1 /. rate]).
    @raise Invalid_argument if [rate <= 0]. *)

val poisson : t -> mean:float -> int
(** Poisson sample (inversion for small means, used by test workloads).
    @raise Invalid_argument if [mean <= 0] or [mean > 700]. *)
