(** Observability for simulation runs.

    Wraps a policy so that every routing decision is recorded: per-link
    occupancy statistics (sampled at call arrivals — unbiased time
    averages by PASTA, since arrivals are Poisson), the distribution of
    carried path lengths, and an optional bounded decision log for
    replay/debugging.  The wrapped policy makes byte-identical decisions
    to the original. *)

open Arnet_topology

type t

type record = {
  time : float;
  src : int;
  dst : int;
  routed_hops : int option;  (** [None] = the call was lost *)
}

val create : ?log_limit:int -> Graph.t -> t
(** [log_limit] caps the decision log (default 0: no log kept). *)

val wrap : t -> Engine.policy -> Engine.policy
(** The instrumented policy.  One recorder should wrap one policy for
    one run; create a fresh recorder per run. *)

val samples : t -> int
(** Number of decisions observed. *)

val mean_occupancy : t -> float array
(** Per link id: time-average calls in progress. *)

val mean_utilization : t -> float array
(** Per link id: mean occupancy over capacity (0 for zero-capacity
    links). *)

val peak_occupancy : t -> int array

val hop_histogram : t -> int array
(** Index [h] counts calls carried on [h]-hop paths; index 0 counts
    lost calls. *)

val log : t -> record list
(** Oldest first; at most [log_limit] entries (the earliest are kept). *)
