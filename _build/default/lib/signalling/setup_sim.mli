(** Packet-level call-signalling simulation.

    The paper's set-up protocol (Section 1): "A call set-up packet ...
    zips along the primary path checking to see whether sufficient
    resources exist on each link of the primary path.  If they do,
    resources are booked on its way back, and the call commences.  If
    resources are not available on the primary path, alternate paths are
    successively attempted."

    The main engine treats that whole exchange as atomic — valid when
    signalling is instantaneous relative to holding times, which the
    paper assumes ("the amount of bandwidth required for this purpose
    should be typically negligible").  This module removes the
    assumption: the set-up packet takes [hop_latency] per link in each
    direction, admission is *checked* on the forward pass but capacity is
    only *booked* on the backward pass, and a competing call can steal
    the capacity in between (glare).  A booking failure releases the
    partial reservation and the set-up retries on the next path, exactly
    like a forward-pass rejection.

    With [hop_latency = 0] the semantics coincide with
    {!Arnet_sim.Engine} (verified by tests); the experiment section
    quantifies how blocking and glare grow as signalling slows. *)

open Arnet_topology
open Arnet_paths

type stats = {
  offered : int;
  blocked : int;
  carried_primary : int;
  carried_alternate : int;
  glare_events : int;
      (** backward-pass booking failures (capacity stolen between check
          and booking) *)
  setup_attempts : int;  (** path attempts over all calls *)
  total_setup_latency : float;
      (** summed time from arrival to successful booking, carried calls
          only *)
}

val blocking : stats -> float
val mean_setup_latency : stats -> float
(** Over carried calls; 0 when none. *)

val run :
  ?warmup:float ->
  ?hop_latency:float ->
  graph:Graph.t ->
  routes:Route_table.t ->
  reserves:int array ->
  allow_alternates:bool ->
  Arnet_sim.Trace.t ->
  stats
(** Replay a trace through the signalling protocol under the given
    admission rules (reserves all zero = uncontrolled; see
    {!Arnet_core.Admission}).  [hop_latency] (default 0.01 time units)
    is the one-way per-link signalling delay.  Holding starts when the
    backward pass completes at the origin.
    @raise Invalid_argument on size mismatches or a negative latency. *)

val compare_with_atomic :
  ?warmup:float ->
  graph:Graph.t ->
  routes:Route_table.t ->
  reserves:int array ->
  Arnet_sim.Trace.t ->
  bool
(** At zero latency, carried/blocked counts must equal the atomic
    engine's controlled scheme on the same trace (test hook). *)
