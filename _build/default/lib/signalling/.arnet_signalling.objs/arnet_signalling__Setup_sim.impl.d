lib/signalling/setup_sim.ml: Admission Arnet_core Arnet_paths Arnet_sim Arnet_topology Arnet_traffic Array Engine Event_queue Float Graph Link List Path Route_table Scheme Stats Trace
