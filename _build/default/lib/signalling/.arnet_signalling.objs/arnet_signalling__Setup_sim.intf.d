lib/signalling/setup_sim.mli: Arnet_paths Arnet_sim Arnet_topology Graph Route_table
