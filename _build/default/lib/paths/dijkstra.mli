(** Single-source shortest paths under arbitrary nonnegative link
    weights.

    Used by the Frank-Wolfe primary-flow optimizer, which repeatedly
    needs minimum-marginal-cost paths, and available as an alternative
    state-independent base policy. *)

open Arnet_topology

val shortest_path :
  Graph.t -> weight:(Link.t -> float) -> src:int -> dst:int -> Path.t option
(** [shortest_path g ~weight ~src ~dst] is a minimum-total-weight path,
    or [None] when unreachable.  Ties are broken towards fewer hops and
    then lexicographically smaller node sequences, so results are
    deterministic.
    @raise Invalid_argument if a weight is negative or not finite, or if
    [src = dst]. *)

val distances : Graph.t -> weight:(Link.t -> float) -> src:int -> float array
(** Weighted distance from [src] to every node; [infinity] where
    unreachable. *)
