(** Minimum-hop (unweighted shortest path) computations.

    The base state-independent policy the paper demonstrates is
    minimum-hop routing with a *unique* primary path per ordered pair
    (Section 1).  Uniqueness is obtained with a deterministic tie-break:
    among all minimum-hop paths we return the lexicographically smallest
    node sequence, which is also what a distributed computation with
    lowest-id preference would settle on. *)

open Arnet_topology

val distances : Graph.t -> src:int -> int array
(** [distances g ~src] gives hop counts from [src] to every node;
    [max_int] where unreachable. *)

val distances_to : Graph.t -> dst:int -> int array
(** Hop counts from every node to [dst] (follows links backwards). *)

val min_hop_path : Graph.t -> src:int -> dst:int -> Path.t option
(** The unique deterministic minimum-hop path, or [None] when [dst] is
    unreachable.  [src = dst] is rejected with [Invalid_argument]. *)

val eccentricity : Graph.t -> int -> int
(** Longest min-hop distance from a node to any reachable node. *)

val diameter : Graph.t -> int
(** Maximum eccentricity over nodes; [max_int]-free only when strongly
    connected, otherwise raises [Invalid_argument]. *)
