lib/paths/dalfar.ml: Arnet_topology Array Distance_vector Enumerate Graph List Path
