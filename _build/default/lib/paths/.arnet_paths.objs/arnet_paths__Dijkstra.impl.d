lib/paths/dijkstra.ml: Arnet_topology Array Float Graph Link List Path
