lib/paths/yen.mli: Arnet_topology Graph Link Path
