lib/paths/enumerate.ml: Arnet_topology Array Graph List Path
