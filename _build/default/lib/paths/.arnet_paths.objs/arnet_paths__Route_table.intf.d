lib/paths/route_table.mli: Arnet_topology Format Graph Path
