lib/paths/distance_vector.mli: Arnet_topology Graph
