lib/paths/bfs.ml: Arnet_topology Array Graph Link List Path Queue
