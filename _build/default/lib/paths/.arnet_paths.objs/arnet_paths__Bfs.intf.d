lib/paths/bfs.mli: Arnet_topology Graph Path
