lib/paths/route_table.ml: Arnet_topology Array Bfs Enumerate Format Graph List Path
