lib/paths/suurballe.mli: Arnet_topology Graph Link Path
