lib/paths/dijkstra.mli: Arnet_topology Graph Link Path
