lib/paths/enumerate.mli: Arnet_topology Graph Path
