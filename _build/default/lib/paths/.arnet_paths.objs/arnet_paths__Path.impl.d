lib/paths/path.ml: Arnet_topology Array Format Graph Hashtbl Link List Printf String
