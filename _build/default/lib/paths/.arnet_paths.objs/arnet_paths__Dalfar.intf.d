lib/paths/dalfar.mli: Arnet_topology Distance_vector Graph Path
