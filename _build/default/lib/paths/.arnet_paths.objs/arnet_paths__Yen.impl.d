lib/paths/yen.ml: Arnet_topology Array Float Graph Hashtbl Link List Path Set
