lib/paths/suurballe.ml: Arnet_topology Array Dijkstra Float Graph Hashtbl Link List Path Set
