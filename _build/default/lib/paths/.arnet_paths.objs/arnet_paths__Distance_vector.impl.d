lib/paths/distance_vector.ml: Arnet_topology Array Bfs Graph Link List
