lib/paths/path.mli: Arnet_topology Format Graph Link
