(** Yen's algorithm: K shortest loop-free paths.

    The paper computes "primary paths and (loop-free) alternate paths
    ordered by increasing length ... using a K-shortest path algorithm"
    (Section 4.2.1).  This module provides that algorithm for hop counts
    or arbitrary nonnegative weights; it also feeds the candidate-path
    sets of the min-link-loss optimizer. *)

open Arnet_topology

val k_shortest :
  ?weight:(Link.t -> float) ->
  Graph.t -> src:int -> dst:int -> k:int -> Path.t list
(** [k_shortest g ~src ~dst ~k] returns up to [k] distinct loop-free
    paths in nondecreasing weight order (default weight: 1 per link,
    i.e. hop count).  Equal-weight paths are ordered by
    {!Path.compare_by_length}, so results are deterministic.
    @raise Invalid_argument when [k < 1] or [src = dst]. *)
