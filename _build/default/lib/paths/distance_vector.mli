(** Distributed minimum-hop distance computation (synchronous
    Bellman-Ford / distance-vector).

    The paper leans on the fact that "minimum-hop paths can be computed
    in a distributed fashion with ease" and that alternate paths can be
    deduced from that same information (DALFAR [14]).  This module runs
    the distance-vector protocol in simulated synchronous rounds — each
    round, every node sends its current vector to every neighbour — and
    reports the exchanged-message count, so the control-plane cost of
    the scheme can be quantified. *)

open Arnet_topology

type t

val compute : Graph.t -> t
(** Runs the protocol to quiescence (at most [diameter] + 1 rounds). *)

val distance : t -> from:int -> to_:int -> int
(** Minimum hop count; [max_int] when unreachable.  [distance ~from:v
    ~to_:v = 0]. *)

val table : t -> int -> int array
(** [table t v] is node [v]'s full distance vector (indexed by
    destination).  Fresh copy. *)

val next_hops : t -> from:int -> to_:int -> int list
(** Neighbours of [from] that lie on some minimum-hop path to [to_]
    (i.e. [distance n to_ = distance from to_ - 1]), ascending — the
    deterministic min-hop primary of {!Bfs.min_hop_path} always starts
    with the first of these. *)

val rounds : t -> int
(** Synchronous rounds until no vector changed. *)

val messages : t -> int
(** Total neighbour-to-neighbour vector transmissions. *)

val agrees_with_bfs : Graph.t -> t -> bool
(** Cross-check against the centralized computation (used by tests). *)
