(** DALFAR-style distributed alternate-route discovery [14].

    A call set-up packet carries the path walked so far and a remaining
    hop budget.  Each node it visits consults only its *local* distance
    vector: a neighbour [n] is a viable next hop when [n] is unvisited
    and [1 + distance n destination <= budget].  Viable neighbours are
    tried in order of increasing shortest-path-via-them length (ties by
    index), and a dead end cranks the packet back one hop.  Because the
    distance vector is a lower bound on the true remaining distance
    (ignoring the visited set only ever shortens it), the search with
    crankback is exhaustive: it discovers exactly the loop-free paths
    within the budget, in a length-biased order, while using only
    per-node local information — the paper's claim that alternate routes
    "can be deduced with surprising ease from distributed minimum-hop
    path information".

    Crankbacks are counted so the signalling cost of on-demand alternate
    routing can be compared against precomputed route tables. *)

open Arnet_topology

type stats = { expansions : int; crankbacks : int }

val find_paths :
  ?max_paths:int ->
  Graph.t -> Distance_vector.t -> src:int -> dst:int -> max_hops:int ->
  Path.t list * stats
(** All loop-free paths from [src] to [dst] of at most [max_hops] links
    in discovery order (first [max_paths] if given).  Discovery order is
    greedy-by-local-estimate; it coincides with global
    increasing-length order on the first (shortest) path but may differ
    beyond it.
    @raise Invalid_argument if [src = dst] or [max_hops < 1]. *)

val first_available :
  Graph.t -> Distance_vector.t -> src:int -> dst:int -> max_hops:int ->
  admits:(Path.t -> bool) -> (Path.t * stats) option
(** On-demand call set-up: walk the same search but stop at the first
    discovered path accepted by [admits] — how a set-up packet with
    crankback would actually place a call without any precomputed
    alternate list. *)

val matches_enumeration :
  Graph.t -> Distance_vector.t -> src:int -> dst:int -> max_hops:int -> bool
(** The discovered path *set* equals {!Enumerate.simple_paths} (used by
    tests; order may differ). *)
