(** Suurballe's algorithm: a minimum-total-weight pair of link-disjoint
    paths.

    Alternate routing leans on path diversity; a natural hardening of
    the scheme is to keep one alternate that shares *no link* with the
    primary, so any single link failure (Section 4.2.2) leaves the pair
    connected.  Suurballe's two-pass construction finds the cheapest
    such pair: shortest-path potentials turn all reduced costs
    nonnegative, the first path's links are reversed in a residual
    graph, a second Dijkstra runs there, and overlapping opposite links
    cancel. *)

open Arnet_topology

val disjoint_pair :
  ?weight:(Link.t -> float) ->
  Graph.t -> src:int -> dst:int -> (Path.t * Path.t) option
(** [disjoint_pair g ~src ~dst] is a pair of link-disjoint paths
    minimizing summed weight (default: hop count), with the shorter
    first; [None] when no two link-disjoint paths exist.  Ties broken
    deterministically.
    @raise Invalid_argument when [src = dst] or a weight is negative or
    non-finite. *)

val is_link_disjoint : Path.t -> Path.t -> bool

val edge_connectivity_at_least_two : Graph.t -> bool
(** Every ordered pair of distinct nodes admits a link-disjoint pair —
    i.e. single-link failures never disconnect any O-D pair.  (True of
    the NSFNet backbone; checked in tests.) *)
