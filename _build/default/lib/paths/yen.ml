open Arnet_topology

let path_weight g weight p =
  List.fold_left (fun acc l -> acc +. weight l) 0. (Path.links g p)

(* Dijkstra restricted to a subgraph: nodes and links may be banned. *)
let restricted_shortest g ~weight ~banned_nodes ~banned_links ~src ~dst =
  let adjusted (l : Link.t) =
    if banned_links l.Link.id || banned_nodes l.Link.dst then infinity
    else weight l
  in
  (* Dijkstra rejects non-finite weights, so filter via a wrapper graph
     walk instead: run our own small Dijkstra here. *)
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0., src)) in
  dist.(src) <- 0.;
  let rec loop () =
    match Pq.min_elt_opt !pq with
    | None -> ()
    | Some ((d, v) as elt) ->
      pq := Pq.remove elt !pq;
      if not settled.(v) then begin
        settled.(v) <- true;
        let relax (l : Link.t) =
          let w = adjusted l in
          if Float.is_finite w then begin
            let nd = d +. w in
            let u = l.Link.dst in
            if
              nd < dist.(u)
              || (nd = dist.(u) && parent.(u) >= 0 && v < parent.(u))
            then begin
              dist.(u) <- nd;
              parent.(u) <- v;
              pq := Pq.add (nd, u) !pq
            end
          end
        in
        List.iter relax (Graph.out_links g v)
      end;
      loop ()
  in
  loop ();
  if dist.(dst) = infinity then None
  else begin
    let rec collect v acc =
      if v = src then v :: acc else collect parent.(v) (v :: acc)
    in
    Some (Path.of_nodes_unchecked g (Array.of_list (collect dst [])))
  end

module Path_set = Set.Make (struct
  type t = Path.t

  let compare a b = compare (Path.nodes a) (Path.nodes b)
end)

let k_shortest ?weight g ~src ~dst ~k =
  if k < 1 then invalid_arg "Yen.k_shortest: k < 1";
  if src = dst then invalid_arg "Yen.k_shortest: src = dst";
  let weight = match weight with None -> fun _ -> 1. | Some w -> w in
  let order a b =
    match compare (path_weight g weight a) (path_weight g weight b) with
    | 0 -> Path.compare_by_length a b
    | c -> c
  in
  match
    restricted_shortest g ~weight
      ~banned_nodes:(fun _ -> false)
      ~banned_links:(fun _ -> false)
      ~src ~dst
  with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let seen = ref (Path_set.singleton first) in
    let candidates = ref [] in
    let add_candidate p =
      if not (Path_set.mem p !seen) then begin
        seen := Path_set.add p !seen;
        candidates := p :: !candidates
      end
    in
    let rec grow () =
      if List.length !accepted >= k then ()
      else begin
        let last = List.hd !accepted in
        let last_nodes = Array.of_list (Path.nodes last) in
        (* spur from every prefix of the latest accepted path *)
        for i = 0 to Array.length last_nodes - 2 do
          let spur = last_nodes.(i) in
          let root = Array.sub last_nodes 0 (i + 1) in
          let root_list = Array.to_list root in
          (* links leaving the spur node that coincide with an accepted
             path sharing this root are banned *)
          let banned_link_tbl = Hashtbl.create 8 in
          let ban_from p =
            let ns = Array.of_list (Path.nodes p) in
            if Array.length ns > i + 1 then begin
              let same_root = ref true in
              for j = 0 to i do
                if ns.(j) <> root.(j) then same_root := false
              done;
              if !same_root then
                match Graph.find_link g ~src:ns.(i) ~dst:ns.(i + 1) with
                | Some l -> Hashtbl.replace banned_link_tbl l.Link.id ()
                | None -> ()
            end
          in
          List.iter ban_from !accepted;
          let banned_node_tbl = Hashtbl.create 8 in
          List.iteri
            (fun j v -> if j < i then Hashtbl.replace banned_node_tbl v ())
            root_list;
          let spur_path =
            restricted_shortest g ~weight
              ~banned_nodes:(Hashtbl.mem banned_node_tbl)
              ~banned_links:(Hashtbl.mem banned_link_tbl)
              ~src:spur ~dst
          in
          match spur_path with
          | None -> ()
          | Some tail ->
            let tail_nodes = Array.of_list (Path.nodes tail) in
            let full =
              Array.append root (Array.sub tail_nodes 1 (Array.length tail_nodes - 1))
            in
            (* reject if the splice repeats a node *)
            let tbl = Hashtbl.create (Array.length full) in
            let ok = ref true in
            Array.iter
              (fun v ->
                if Hashtbl.mem tbl v then ok := false
                else Hashtbl.add tbl v ())
              full;
            if !ok then add_candidate (Path.of_nodes_unchecked g full)
        done;
        match List.sort order !candidates with
        | [] -> ()
        | best :: rest ->
          candidates := rest;
          accepted := best :: !accepted;
          grow ()
      end
    in
    grow ();
    List.sort order !accepted
