(** Finite birth-death chains on states [0 .. capacity].

    This is the Markov model of a single link in Section 2 (Figure 1):
    birth rate from state [s] is the total call arrival rate accepted in
    that state, death rate from state [s] is [s] (unit-mean exponential
    holding times), though arbitrary death rates are supported for the
    chain-comparison steps of the Theorem-1 proof. *)

type t

val make : births:float array -> deaths:float array -> t
(** [make ~births ~deaths] builds a chain over states
    [0 .. Array.length births].  [births.(s)] is the rate [s -> s+1];
    [deaths.(s)] is the rate [s+1 -> s].  Both arrays share a length
    [capacity]; all entries must be positive and finite.
    @raise Invalid_argument otherwise. *)

val erlang : births:float array -> t
(** Chain with the link's natural death rates [s+1 -> s] equal to
    [s+1]. *)

val protected_link :
  primary:float -> overflow:(int -> float) -> capacity:int -> reserve:int -> t
(** The exact chain of Figure 1: below the protection threshold, births
    are [primary + overflow s] (primary plus state-dependent
    alternate-routed arrivals); in the top [reserve + 1] states
    (from [capacity - reserve] on), alternates are rejected so births are
    [primary] alone.  Deaths are the natural [s+1].  [overflow s] must be
    [>= 0]. *)

val capacity : t -> int

val stationary : t -> float array
(** Stationary distribution over [0 .. capacity]; computed in log space,
    sums to 1. *)

val time_congestion : t -> float
(** Probability of the full state — the paper's generalized Erlang
    blocking function [B(lambda_vector, capacity)]. *)

val call_congestion : t -> arrival_at_full:float -> float
(** Fraction of arriving calls blocked when the arrival rate in state
    [s < capacity] is [births.(s)] and the rate at the full state is
    [arrival_at_full].  (With state-dependent arrivals PASTA does not
    apply, so this differs from {!time_congestion}.) *)

val mean_occupancy : t -> float

val expected_passage_time : t -> int -> float
(** [expected_passage_time c s] is [E tau], the expected time for the
    chain to go from state [s] to state [s + 1] for the first time
    (the quantity bounded in the Theorem-1 proof).
    @raise Invalid_argument unless [0 <= s < capacity]. *)

val expected_accepted_until_up : t -> int -> float
(** [X_{s,s+1}] of Equation 4: expected number of accepted arrivals from
    the moment the chain sits at [s] until it first reaches [s + 1]
    (counting the arrival that completes the passage). *)
