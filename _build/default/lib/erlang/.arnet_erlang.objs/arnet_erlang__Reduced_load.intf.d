lib/erlang/reduced_load.mli:
