lib/erlang/birth_death.ml: Array Float Printf
