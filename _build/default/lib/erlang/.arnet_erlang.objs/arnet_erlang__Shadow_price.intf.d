lib/erlang/shadow_price.mli:
