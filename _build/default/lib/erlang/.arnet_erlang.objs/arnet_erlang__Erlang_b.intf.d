lib/erlang/erlang_b.mli:
