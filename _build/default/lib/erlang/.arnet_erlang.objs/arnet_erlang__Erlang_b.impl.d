lib/erlang/erlang_b.ml: Array Float
