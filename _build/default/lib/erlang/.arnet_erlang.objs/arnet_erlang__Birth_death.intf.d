lib/erlang/birth_death.mli:
