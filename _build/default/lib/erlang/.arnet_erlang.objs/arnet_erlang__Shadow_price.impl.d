lib/erlang/shadow_price.ml: Array Erlang_b Float
