lib/erlang/reduced_load.ml: Array Erlang_b Float List
