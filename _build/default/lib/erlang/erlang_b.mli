(** The Erlang blocking function and its inverse-recursion machinery.

    [B(a, c)] is the blocking probability of an M/M/c/c link offered [a]
    Erlangs of Poisson traffic with unit-mean holding times.  Section 2
    of the paper leans on the classical recursion for the *inverse*
    blocking function (Jagerman [17], Equation 12):

    {v y_x = 1 + (x / a) * y_{x-1},   y_0 = 1,   B(a, x) = 1 / y_x v}

    Everything here is numerically safe for the capacities of interest:
    the direct recursion never overflows, and a log-space variant covers
    extreme parameters. *)

val blocking : offered:float -> capacity:int -> float
(** [blocking ~offered ~capacity] is [B(offered, capacity)] computed with
    the stable forward recursion [B_x = a B_{x-1} / (x + a B_{x-1})].
    [blocking ~offered ~capacity:0 = 1].
    @raise Invalid_argument if [offered <= 0] or [capacity < 0]. *)

val blocking_table : offered:float -> capacity:int -> float array
(** [B(a, x)] for [x = 0 .. capacity]; index [x] holds [B(a, x)]. *)

val log_inverse_table : offered:float -> capacity:int -> float array
(** [log y_x] for [x = 0 .. capacity], computed entirely in log space so
    it cannot overflow even when [y] exceeds the float range
    (e.g. huge capacity at tiny load).  [B(a,x) = exp (-. log y_x)]. *)

val blocking_ratio : offered:float -> capacity:int -> reserve:int -> float
(** [blocking_ratio ~offered ~capacity:c ~reserve:r] is
    [B(a, c) / B(a, c - r)] — the Theorem-1 bound on the expected number
    of primary calls lost by accepting one alternate-routed call on a
    link with protection level [r].  Always in [0, 1]; equals 1 at
    [r = 0].
    @raise Invalid_argument unless [0 <= r <= c]. *)

val mean_carried : offered:float -> capacity:int -> float
(** Mean number of busy circuits [a * (1 - B(a, c))]. *)

val loss_rate : offered:float -> capacity:int -> float
(** Expected calls lost per unit time, [a * B(a, c)] — the convex link
    cost of the min-link-loss SI policy (Krishnan [23] proves
    convexity in [a]). *)

val loss_rate_derivative : offered:float -> capacity:int -> float
(** d/da [a * B(a, c)], computed from the closed form
    [dB/da = B * (c/a - 1 + B)]; the marginal link cost used by the
    Frank-Wolfe optimizer. *)

val dimension : offered:float -> target_blocking:float -> int
(** The classical inverse problem: the smallest capacity [c] with
    [B(offered, c) <= target_blocking] — link dimensioning for a
    grade-of-service target.
    @raise Invalid_argument unless [0 < target_blocking < 1]. *)
