type t = { offered : float; capacity : int; prices : float array }

let make ~offered ~capacity =
  if capacity < 1 then invalid_arg "Shadow_price.make: capacity < 1";
  if offered <= 0. || not (Float.is_finite offered) then
    invalid_arg "Shadow_price.make: bad offered load";
  (* p(s) = B(nu, C)/B(nu, s) = y_s / y_C, computed from the log inverse
     table so extreme parameters cannot overflow. *)
  let ly = Erlang_b.log_inverse_table ~offered ~capacity in
  let prices =
    Array.init capacity (fun s -> exp (ly.(s) -. ly.(capacity)))
  in
  { offered; capacity; prices }

let price t s =
  if s < 0 then invalid_arg "Shadow_price.price: negative state";
  if s >= t.capacity then infinity else t.prices.(s)

let capacity t = t.capacity
let offered t = t.offered

let path_price tables ~link_ids ~occupancy =
  let total = ref 0. in
  let i = ref 0 in
  let n = Array.length link_ids in
  while !i < n && Float.is_finite !total do
    let id = link_ids.(!i) in
    total := !total +. price tables.(id) (occupancy id);
    incr i
  done;
  !total
