(** Erlang fixed-point (reduced-load) approximation.

    Given routes [(offered, links)] — each a Poisson stream offered to a
    fixed path — the classical approximation computes per-link blocking
    [B_k] solving

    {v B_k = B(sum over routes through k of a_r * prod_{j in r, j <> k}
              (1 - B_j),  C_k) v}

    by repeated substitution.  Kelly [19] shows the fixed point exists and
    is unique for this single-rate model.  The paper's Ott-Krishnan
    comparison deliberately uses *unreduced* loads; this module provides
    the reduced variant so both can be exercised (Section 5 ablation). *)

type route = { offered : float; links : int list }

val solve :
  ?tolerance:float ->
  ?max_iterations:int ->
  capacities:int array ->
  route list ->
  float array
(** [solve ~capacities routes] returns per-link blocking probabilities
    (indexed like [capacities]).  Iterates until the largest change is
    below [tolerance] (default [1e-10]) or [max_iterations] (default
    [10_000]) is hit.
    @raise Invalid_argument on empty routes through unknown links,
    nonpositive offered loads, or no convergence. *)

val reduced_link_loads :
  capacities:int array -> blocking:float array -> route list -> float array
(** Thinned offered load per link implied by given per-link blocking. *)

val route_blocking : blocking:float array -> route -> float
(** [1 - prod (1 - B_j)] over the route's links — the approximation's
    end-to-end blocking for that route. *)
