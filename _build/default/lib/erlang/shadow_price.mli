(** Per-link implied costs (shadow prices) in the style of Ott &
    Krishnan [34].

    For an M/M/C/C link fed by Poisson primary traffic of intensity
    [nu], the expected number of *future primary calls lost* because one
    extra circuit is seized while the link holds [s] calls is exactly

    {v p(s) = B(nu, C) / B(nu, s) v}

    (first-passage analysis of the birth-death chain — the same quantity
    Theorem 1 upper-bounds in the presence of overflow traffic).  The
    Ott-Krishnan separable routing rule prices a path as the sum of its
    link prices at the current states and admits the call on the cheapest
    path when that price is below the call's revenue (1 for the paper's
    single-rate calls). *)

type t
(** Precomputed price table for one link. *)

val make : offered:float -> capacity:int -> t
(** [make ~offered ~capacity] precomputes [p(s)] for
    [s = 0 .. capacity - 1] with the *unreduced* primary intensity, the
    variant the paper simulates.
    @raise Invalid_argument if [offered <= 0] or [capacity < 1]. *)

val price : t -> int -> float
(** [price t s] for occupancy [s]; [infinity] when [s >= capacity]
    (the link cannot accept at all). *)

val capacity : t -> int
val offered : t -> float

val path_price : t array -> link_ids:int array -> occupancy:(int -> int) -> float
(** Sum of link prices along a path given current occupancies —
    [infinity] if any link is full.  [t array] is indexed by link id. *)
