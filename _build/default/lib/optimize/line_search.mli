(** Golden-section search on a unimodal function over an interval. *)

val golden_section :
  ?tolerance:float -> ?max_iterations:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** [golden_section ~f ~lo ~hi ()] is the argmin of [f] over
    [\[lo, hi\]] assuming unimodality (convexity suffices).  Default
    tolerance [1e-6] on the interval width, cap 200 iterations.
    @raise Invalid_argument when [lo > hi] or the interval is not
    finite. *)
