let golden_ratio = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tolerance = 1e-6) ?(max_iterations = 200) ~f ~lo ~hi () =
  if not (Float.is_finite lo && Float.is_finite hi) || lo > hi then
    invalid_arg "Line_search.golden_section: bad interval";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (golden_ratio *. (!b -. !a))) in
  let x2 = ref (!a +. (golden_ratio *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iterations = ref 0 in
  while !b -. !a > tolerance && !iterations < max_iterations do
    incr iterations;
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden_ratio *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden_ratio *. (!b -. !a));
      f2 := f !x2
    end
  done;
  (!a +. !b) /. 2.
