(** Minimum-link-loss primary flows by Frank-Wolfe (flow deviation).

    Section 4.2.2: "primary paths were chosen so as to minimize overall
    system blocking of primary calls, under the independent link
    assumption ... The expected number of lost calls on a link of
    capacity C fed by a Poisson stream of traffic intensity Lambda ...
    is convex in Lambda [23].  Using this as a cost function we used an
    iterative [method] to minimize the expected sum of link costs [3]."

    The program is convex over the path-flow polytope, so Frank-Wolfe —
    repeatedly shifting flow towards the minimum-marginal-cost candidate
    path of each pair, with an exact line search — converges to the same
    optimum as the paper's conjugate-gradient method (see DESIGN.md,
    substitution table). *)

open Arnet_topology
open Arnet_traffic

type result = {
  flow : Flow.t;  (** the optimized bifurcated primaries *)
  objective : float;  (** total expected lost primary calls per unit time *)
  iterations : int;
  relative_gap : float;  (** Frank-Wolfe duality-gap estimate at exit *)
}

val minimize_link_loss :
  ?candidates_per_pair:int ->
  ?max_iterations:int ->
  ?tolerance:float ->
  graph:Graph.t ->
  matrix:Matrix.t ->
  unit ->
  result
(** Optimizes [sum_k Lambda_k * B(Lambda_k, C_k)] over splits of each
    positive demand across its [candidates_per_pair] (default 8)
    shortest candidate paths (Yen, hop metric).  Stops when the relative
    duality gap drops below [tolerance] (default 1e-4) or after
    [max_iterations] (default 200).
    @raise Invalid_argument when some positive demand has no path. *)

val objective_of_loads : capacities:int array -> loads:float array -> float
(** [sum_k loss_rate Lambda_k C_k] — exposed for tests and ablations. *)
