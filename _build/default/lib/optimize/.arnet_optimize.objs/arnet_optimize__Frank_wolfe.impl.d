lib/optimize/frank_wolfe.ml: Arnet_erlang Arnet_paths Arnet_topology Arnet_traffic Array Erlang_b Float Flow Graph Hashtbl Line_search Link List Matrix Path Yen
