lib/optimize/frank_wolfe.mli: Arnet_topology Arnet_traffic Flow Graph Matrix
