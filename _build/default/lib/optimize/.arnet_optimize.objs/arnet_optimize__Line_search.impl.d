lib/optimize/line_search.ml: Float
