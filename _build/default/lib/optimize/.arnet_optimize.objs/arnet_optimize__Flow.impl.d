lib/optimize/flow.ml: Arnet_paths Arnet_topology Arnet_traffic Array Float Graph Hashtbl List Matrix Path
