lib/optimize/line_search.mli:
