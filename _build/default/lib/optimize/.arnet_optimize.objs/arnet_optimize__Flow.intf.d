lib/optimize/flow.mli: Arnet_paths Arnet_topology Arnet_traffic Graph Matrix Path
