(** Bifurcated primary flows.

    The min-link-loss SI policy of Section 4.2.2 splits each pair's
    demand over several paths with fixed probabilities ("bifurcated
    primary flows, where a path would be a primary path for an O-D pair
    with a certain probability").  A {!t} stores those splits; the
    simulator samples a primary per call with the call's pre-drawn
    uniform variate, keeping runs comparable across schemes. *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic

type t

val make : Graph.t -> ((int * int) * (Path.t * float) list) list -> t
(** [make g assignments] — for each listed ordered pair, its paths and
    fractions.  Fractions must be nonnegative and sum to 1 (within
    1e-6; they are renormalized); paths must connect the pair.  Pairs
    not listed carry no flow.
    @raise Invalid_argument on violations. *)

val graph : t -> Graph.t

val paths : t -> src:int -> dst:int -> (Path.t * float) list
(** Empty when the pair carries no flow. *)

val link_loads : t -> Matrix.t -> float array
(** Expected primary load per link id:
    [Lambda_k = sum T(i,j) * sum_{paths p of (i,j) through k} frac(p)] —
    Equation 1 generalized to bifurcated primaries. *)

val sample : t -> src:int -> dst:int -> u:float -> Path.t option
(** Inverse-CDF sample with [u] in [0, 1); [None] when the pair has no
    paths. *)

val average_hops : t -> Matrix.t -> float
(** Demand-weighted mean primary path length. *)

val support_size : t -> int
(** Total number of (pair, path) assignments with positive fraction. *)
