open Arnet_topology
open Arnet_paths
open Arnet_traffic

type t = { graph : Graph.t; table : (int * int, (Path.t * float) list) Hashtbl.t }

let make g assignments =
  let table = Hashtbl.create (List.length assignments) in
  let add ((src, dst), entries) =
    if src = dst then invalid_arg "Flow.make: src = dst";
    if Hashtbl.mem table (src, dst) then
      invalid_arg "Flow.make: duplicate pair";
    let positive = List.filter (fun (_, f) -> f > 0.) entries in
    if positive = [] then ()
    else begin
      let total =
        List.fold_left
          (fun acc (p, f) ->
            if f < 0. || not (Float.is_finite f) then
              invalid_arg "Flow.make: bad fraction";
            if Path.src p <> src || Path.dst p <> dst then
              invalid_arg "Flow.make: path endpoints mismatch";
            acc +. f)
          0. positive
      in
      if Float.abs (total -. 1.) > 1e-6 then
        invalid_arg "Flow.make: fractions must sum to 1";
      let normalized = List.map (fun (p, f) -> (p, f /. total)) positive in
      Hashtbl.add table (src, dst) normalized
    end
  in
  List.iter add assignments;
  { graph = g; table }

let graph t = t.graph

let paths t ~src ~dst =
  match Hashtbl.find_opt t.table (src, dst) with
  | None -> []
  | Some l -> l

let link_loads t matrix =
  if Matrix.nodes matrix <> Graph.node_count t.graph then
    invalid_arg "Flow.link_loads: size mismatch";
  let loads = Array.make (Graph.link_count t.graph) 0. in
  Matrix.iter_demands matrix (fun i j d ->
      List.iter
        (fun (p, f) ->
          Array.iter
            (fun k -> loads.(k) <- loads.(k) +. (d *. f))
            p.Path.link_ids)
        (paths t ~src:i ~dst:j));
  loads

let sample t ~src ~dst ~u =
  if u < 0. || u >= 1. then invalid_arg "Flow.sample: u outside [0,1)";
  match paths t ~src ~dst with
  | [] -> None
  | entries ->
    let rec pick acc = function
      | [] -> None
      | [ (p, _) ] -> Some p  (* absorb rounding in the last entry *)
      | (p, f) :: rest ->
        let acc = acc +. f in
        if u < acc then Some p else pick acc rest
    in
    pick 0. entries

let average_hops t matrix =
  let weighted = ref 0. and demand = ref 0. in
  Matrix.iter_demands matrix (fun i j d ->
      match paths t ~src:i ~dst:j with
      | [] -> ()
      | entries ->
        demand := !demand +. d;
        List.iter
          (fun (p, f) ->
            weighted := !weighted +. (d *. f *. float_of_int (Path.hops p)))
          entries);
  if !demand = 0. then 0. else !weighted /. !demand

let support_size t =
  Hashtbl.fold (fun _ entries acc -> acc + List.length entries) t.table 0
