(** Exact Markov-decision analysis of small loss networks.

    The paper's stronger proof of Theorem 1 lives in Markov decision
    theory ([37], via Howard's policy iteration [15]); this module makes
    that world concrete for networks small enough to enumerate.  The
    state is the vector of calls in progress *per route* (per-link
    occupancy does not suffice: a departure must free exactly the links
    its call held).  Arrivals are Poisson per O-D stream, holding times
    unit-mean exponential, rewards count carried calls.  Relative value
    iteration on the uniformized chain yields:

    - the {e optimal} long-run blocking over all admission/routing
      policies (including ones the paper's scheme cannot express), and
    - the {e exact} blocking of any given stationary policy — a
      noise-free reference for the simulator and the schemes.

    State spaces grow quickly; {!state_count} tells you what you are in
    for (a triangle at C = 10 is a few thousand states). *)

type t

val make :
  capacities:int array ->
  arrivals:float array ->
  routes:(int * int list) list ->
  t
(** [make ~capacities ~arrivals ~routes] — [arrivals.(od)] is stream
    [od]'s rate; [routes] lists [(od, links)] in each stream's
    preference order (first listed = primary).  Every stream must have
    at least one route; links index [capacities].
    @raise Invalid_argument on malformed input or if the state space
    exceeds [5_000_000] states. *)

val state_count : t -> int
val route_count : t -> int

val optimal_blocking :
  ?tolerance:float -> ?max_iterations:int -> t -> float
(** Minimum achievable long-run blocking (maximum carried-call rate)
    over all stationary policies, by relative value iteration.
    @raise Invalid_argument if iteration fails to converge. *)

type policy = occupancy:int array -> od:int -> int option
(** For an arrival of stream [od] seeing per-link [occupancy]: the
    index (within the stream's preference list) of the route to use, or
    [None] to reject.  The chosen route must be feasible. *)

val policy_blocking :
  ?tolerance:float -> ?max_iterations:int -> t -> policy -> float
(** Exact long-run blocking of the given stationary policy. *)

(** {1 Structure of the optimal policy} *)

type decision_record = {
  occupancy : int array;  (** per-link occupancy at the arrival *)
  od : int;
  action : int option;  (** optimal route (preference index) or reject *)
}

val optimal_decisions :
  ?tolerance:float -> ?max_iterations:int -> t -> decision_record list
(** The optimal action at every (state, stream) pair, extracted from the
    converged value function.  Lets one test the classical claim (Nguyen
    [33], which the paper cites for trunk reservation's optimality) that
    the optimal control of overflow traffic is threshold-shaped: on this
    model, whether the alternate is taken depends on link occupancies
    through a reservation-style cutoff. *)

val alternate_acceptance_threshold :
  ?tolerance:float -> ?max_iterations:int -> t -> od:int -> int option
(** For a stream with exactly two routes (primary + one alternate):
    checks whether the optimal decisions for that stream are a pure
    trunk-reservation policy *in link occupancies* — the alternate is
    taken exactly when the primary is full and every alternate link has
    more than [r] free circuits — and returns that [r] when they are.

    [None] means the optimal actions are not determined by occupancy
    alone.  That happens in genuinely loaded networks: the route-level
    state (how many of the busy circuits belong to alternate-routed
    calls) carries information that occupancy discards, so Nguyen's
    single-link threshold-optimality [33] does not lift verbatim to
    networks — while the occupancy-threshold scheme still lands within
    a fraction of a percent of the optimum (see the [ext_optimality]
    bench section).
    @raise Invalid_argument if the stream does not have exactly two
    routes. *)

(** {1 The paper's policies, expressed over this model} *)

val single_path_policy : t -> policy
(** First-listed route if feasible, else reject. *)

val uncontrolled_policy : t -> policy
(** First feasible route in preference order. *)

val controlled_policy : t -> reserves:int array -> policy
(** Primary under the plain capacity rule; alternates only where every
    link is below [capacity - reserve]. *)
