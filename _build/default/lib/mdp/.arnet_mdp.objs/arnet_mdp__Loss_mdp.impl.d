lib/mdp/loss_mdp.ml: Array Float Hashtbl List Printf Stdlib
