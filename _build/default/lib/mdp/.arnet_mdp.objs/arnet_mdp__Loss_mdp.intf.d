lib/mdp/loss_mdp.mli:
