examples/quadrangle.mli:
