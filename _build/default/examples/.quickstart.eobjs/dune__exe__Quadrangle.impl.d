examples/quadrangle.ml: Arnet_experiments Array Format List Sys
