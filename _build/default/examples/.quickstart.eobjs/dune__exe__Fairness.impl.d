examples/fairness.ml: Arnet_experiments Arnet_sim Array Config Format Internet List Sys
