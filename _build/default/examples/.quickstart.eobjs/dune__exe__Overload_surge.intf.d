examples/overload_surge.mli:
