examples/multirate_qos.mli:
