examples/minloss_primaries.mli:
