examples/overload_surge.ml: Arnet_experiments Array Config Format List Overload_exp Report Sys
