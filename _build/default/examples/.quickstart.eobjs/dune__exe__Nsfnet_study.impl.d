examples/nsfnet_study.ml: Arnet_experiments Arnet_traffic Array Config Format Internet Sys
