examples/quickstart.ml: Arnet_bound Arnet_core Arnet_paths Arnet_sim Arnet_topology Arnet_traffic Array Engine Graph Link List Loads Matrix Path Printf Protection Route_table Scheme Stats String
