examples/cellular_borrowing.mli:
