examples/quickstart.mli:
