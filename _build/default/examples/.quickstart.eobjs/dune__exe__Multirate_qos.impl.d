examples/multirate_qos.ml: Arnet_experiments Arnet_multirate Array Config Format Kaufman_roberts List Multirate_exp Sys
