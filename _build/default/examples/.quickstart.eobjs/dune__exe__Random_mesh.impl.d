examples/random_mesh.ml: Arnet_experiments Arnet_paths Arnet_serial Arnet_topology Array Bfs Builders Config Format Graph Path Random_mesh Suurballe Sys
