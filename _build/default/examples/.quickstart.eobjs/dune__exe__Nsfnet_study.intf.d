examples/nsfnet_study.mli:
