examples/link_failure.ml: Arnet_experiments Arnet_paths Arnet_topology Array Config Format Graph Internet Nsfnet Path Route_table Sys
