examples/fairness.mli:
