examples/random_mesh.mli:
