examples/cellular_borrowing.ml: Arnet_cellular Arnet_experiments Arnet_sim Array Borrowing Cell_grid Cellular_exp Config Format List Sys
