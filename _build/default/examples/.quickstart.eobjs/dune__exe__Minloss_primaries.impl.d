examples/minloss_primaries.ml: Arnet_experiments Arnet_optimize Arnet_paths Arnet_topology Array Config Format List Minloss Sys
