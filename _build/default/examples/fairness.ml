(* Fairness (Section 4.2.2, "Blocking on an O-D pair basis"): alternate
   routing shares resources more freely, so blocking is spread far more
   evenly across O-D pairs.  Single-path routing concentrates loss on
   the pairs whose primaries cross hot links.

   Run with: dune exec examples/fairness.exe [-- quick] *)

open Arnet_experiments

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then Config.quick
    else Config.paper
  in
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "per-O-D blocking skew, NSFNet at nominal load, H=6 (%s)@."
    (Config.describe config);
  let rows = Internet.fairness ~config () in
  Internet.print_fairness ppf rows;
  let cv scheme =
    (List.find (fun r -> r.Internet.scheme = scheme) rows).Internet.skew
      .Arnet_sim.Stats.coefficient_of_variation
  in
  Format.fprintf ppf
    "@.skew (coefficient of variation): single-path %.2f > controlled %.2f \
     >= uncontrolled %.2f@."
    (cv "single-path") (cv "controlled") (cv "uncontrolled");
  Format.fprintf ppf
    "alternate routing's fairness property shows as a smaller spread.@."
