(* The NSFNet T3 backbone study (Table 1 + Figures 6/7): reconstruct the
   nominal traffic matrix from the paper's published link loads, derive
   the protection levels, and sweep load around nominal with all four
   schemes.

   Run with: dune exec examples/nsfnet_study.exe [-- quick] *)

open Arnet_experiments

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then Config.quick
    else Config.paper
  in
  let ppf = Format.std_formatter in

  Format.fprintf ppf "reconstructing the nominal traffic matrix...@.";
  let routes, fit = Arnet_traffic.Fit.nsfnet_nominal () in
  Format.fprintf ppf
    "  fitted in %d iterations; max relative link-load error %.2e; total \
     demand %.1f Erlangs@."
    fit.Arnet_traffic.Fit.iterations
    fit.Arnet_traffic.Fit.max_relative_error
    (Arnet_traffic.Matrix.total fit.Arnet_traffic.Fit.matrix);
  ignore routes;

  Format.fprintf ppf "@.Table 1 (paper vs this reconstruction):@.";
  Internet.print_table1 ppf (Internet.table1 ());

  Format.fprintf ppf "@.blocking vs load (scale 1.0 = paper's Load=10), %s:@."
    (Config.describe config);
  let points = Internet.run ~config () in
  Internet.print ppf points
