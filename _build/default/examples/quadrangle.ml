(* The paper's fully-connected quadrangle (Figures 3/4): sweep the
   symmetric offered load and watch uncontrolled alternate routing
   collapse past ~85 Erlangs while the controlled scheme tracks the
   better of the two baselines.

   Run with: dune exec examples/quadrangle.exe [-- quick] *)

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then
      Arnet_experiments.Config.quick
    else Arnet_experiments.Config.paper
  in
  let ppf = Format.std_formatter in
  Format.fprintf ppf "fully-connected quadrangle, C=100 per direction (%s)@."
    (Arnet_experiments.Config.describe config);
  let points = Arnet_experiments.Quadrangle.run ~config () in
  Arnet_experiments.Quadrangle.print ppf points;
  (* the guarantee of Section 3: controlled never worse than single-path *)
  let violations =
    List.filter
      (fun p ->
        let ctl = Arnet_experiments.Sweep.scheme_mean p "controlled" in
        let sp = Arnet_experiments.Sweep.scheme_mean p "single-path" in
        ctl > sp +. 0.01)
      points
  in
  Format.fprintf ppf
    "points where controlled does worse than single-path (beyond noise): %d@."
    (List.length violations)
