(* Link failures (Section 4.2.2): disable a pair of opposite links in
   the NSFNet model, let routing and protection levels adapt to the new
   topology, and check that the scheme ordering survives.

   Run with: dune exec examples/link_failure.exe [-- SRC DST] *)

open Arnet_topology
open Arnet_paths
open Arnet_experiments

let () =
  let src, dst =
    if Array.length Sys.argv >= 3 then
      (int_of_string Sys.argv.(1), int_of_string Sys.argv.(2))
    else (2, 3)
  in
  let ppf = Format.std_formatter in
  let config = Config.quick in
  let g = Nsfnet.graph () in
  (match Graph.find_link g ~src ~dst with
  | None ->
    Format.fprintf ppf "no link %d->%d in the backbone; links are:@." src dst;
    Format.fprintf ppf "%a@." Graph.pp g;
    exit 1
  | Some _ -> ());
  Format.fprintf ppf "disabling links %d->%d and %d->%d@." src dst dst src;

  (* show how the primary path around the failure changes *)
  let degraded = Graph.without_links g [ (src, dst); (dst, src) ] in
  let before = Route_table.build g and after = Route_table.build degraded in
  Format.fprintf ppf "primary %d->%d before: %s, after: %s@." src dst
    (Path.to_string (Route_table.primary before ~src ~dst))
    (Path.to_string (Route_table.primary after ~src ~dst));

  Format.fprintf ppf "@.intact network:@.";
  Internet.print ppf
    (Internet.run ~scales:[ 0.8; 1.0; 1.2 ] ~with_ott_krishnan:false ~config ());
  Format.fprintf ppf "@.with the failure (protection levels recomputed):@.";
  Internet.print ppf
    (Internet.run
       ~failed_links:[ (src, dst); (dst, src) ]
       ~scales:[ 0.8; 1.0; 1.2 ] ~config ())
