(* Min-link-loss primaries (Section 4.2.2): re-derive the SI tier by
   convex optimization (Frank-Wolfe over bifurcated path flows), then
   show the paper's punchline — the optimized primaries beat min-hop
   when routing is single-path, but once controlled alternate routing is
   added the two SI policies are nearly indistinguishable.

   Run with: dune exec examples/minloss_primaries.exe [-- quick] *)

open Arnet_experiments

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then Config.quick
    else Config.paper
  in
  let ppf = Format.std_formatter in
  Format.fprintf ppf "optimizing primary flows on NSFNet (%s)...@."
    (Config.describe config);
  let r = Minloss.run ~config () in
  Minloss.print ppf r;

  (* peek at a bifurcated pair *)
  let flow = r.Minloss.flow in
  let shown = ref 0 in
  let g = Arnet_optimize.Flow.graph flow in
  let n = Arnet_topology.Graph.node_count g in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && !shown < 3 then
        match Arnet_optimize.Flow.paths flow ~src ~dst with
        | _ :: _ :: _ as entries ->
          incr shown;
          Format.fprintf ppf "  bifurcated pair %d->%d:" src dst;
          List.iter
            (fun (p, f) ->
              Format.fprintf ppf " %s@%.0f%%" (Arnet_paths.Path.to_string p)
                (100. *. f))
            entries;
          Format.fprintf ppf "@."
        | _ -> ()
    done
  done
