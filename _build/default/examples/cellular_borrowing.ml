(* Channel borrowing in cellular telephony (Section 3.2): the same
   control strategy applied to a Multiple Service / Multiple Resource
   model.  Borrowing a channel locks it in up to three cells, so the
   H = 3 protection level guarantees improvement over no borrowing.

   Run with: dune exec examples/cellular_borrowing.exe [-- quick] *)

open Arnet_cellular
open Arnet_experiments

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then Config.quick
    else Config.paper
  in
  let ppf = Format.std_formatter in
  let grid = Cell_grid.reuse3_grid ~rows:4 ~cols:5 ~capacity:50 in
  Format.fprintf ppf
    "4x5 reuse-3 grid, 50 channels per cell, max lock set %d -> protect \
     with H=%d@."
    (Cell_grid.max_lock_set_size grid)
    (Cell_grid.max_lock_set_size grid);
  let offered = Array.make grid.Cell_grid.cells 40. in
  let levels = Borrowing.protection_levels grid ~offered_per_cell:offered in
  Format.fprintf ppf
    "protection level at 40 Erlangs/cell: %d (small, as the paper expects \
     for C~50 and H=3)@."
    levels.(1);
  Format.fprintf ppf "@.blocking vs per-cell load (one 1.5x hot-spot cell):@.";
  let points = Cellular_exp.run ~config () in
  Cellular_exp.print ppf points;
  let ok =
    List.for_all
      (fun p ->
        p.Cellular_exp.controlled.Arnet_sim.Stats.mean
        <= p.Cellular_exp.no_borrowing.Arnet_sim.Stats.mean +. 0.01)
      points
  in
  Format.fprintf ppf
    "controlled borrowing never worse than no borrowing: %b@." ok
