(* General-mesh generalization: sample a Waxman random topology, check
   its path diversity (Suurballe link-disjoint pairs), and verify the
   paper's guarantee — controlled alternate routing never worse than
   single-path — under deep overload.

   Run with: dune exec examples/random_mesh.exe [-- SEED] *)

open Arnet_topology
open Arnet_paths
open Arnet_experiments

let () =
  let seed =
    if Array.length Sys.argv > 1 then
      match int_of_string_opt Sys.argv.(1) with Some s -> s | None -> 11
    else 11
  in
  let ppf = Format.std_formatter in
  let g = Builders.waxman ~seed ~nodes:10 ~capacity:50 () in
  Format.fprintf ppf "waxman(seed=%d): %d nodes, %d links, diameter %d@." seed
    (Graph.node_count g) (Graph.link_count g) (Bfs.diameter g);

  (* path diversity: how many pairs survive any single link failure? *)
  let n = Graph.node_count g in
  let protected_pairs = ref 0 and pairs = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        incr pairs;
        if Suurballe.disjoint_pair g ~src ~dst <> None then
          incr protected_pairs
      end
    done
  done;
  Format.fprintf ppf
    "link-disjoint path pairs exist for %d/%d ordered pairs@."
    !protected_pairs !pairs;
  (match Suurballe.disjoint_pair g ~src:0 ~dst:(n - 1) with
  | Some (a, b) ->
    Format.fprintf ppf "  e.g. %d->%d: %s and %s@." 0 (n - 1)
      (Path.to_string a) (Path.to_string b)
  | None -> ());

  Format.fprintf ppf
    "@.guarantee check under deep overload (busiest link at 1.6C):@.";
  let rows =
    Random_mesh.run ~topology_seeds:[ seed ] ~config:Config.quick ()
  in
  Random_mesh.print ppf rows;

  (* the topology is exportable for reuse via the text format *)
  Format.fprintf ppf "@.spec (feed back via `arn --network file:...`):@.%s"
    (Arnet_serial.Spec.to_string g)
