(* Multi-rate QoS calls (the paper's declared future work): a video
   class reserving 6 bandwidth units rides alongside 1-unit calls.
   State protection generalizes to bandwidth units and still tames
   uncontrolled alternate routing at overload.

   Run with: dune exec examples/multirate_qos.exe [-- quick] *)

open Arnet_multirate
open Arnet_experiments

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then Config.quick
    else Config.paper
  in
  let ppf = Format.std_formatter in

  (* the analytic substrate first: exact per-class blocking of a shared
     link via the Kaufman-Roberts recursion *)
  let classes =
    [ { Kaufman_roberts.offered = 60.; bandwidth = 1 };
      { Kaufman_roberts.offered = 5.; bandwidth = 6 } ]
  in
  (match Kaufman_roberts.class_blocking ~capacity:100 classes with
  | [ b1; b6 ] ->
    Format.fprintf ppf
      "one link, C=100, 60 E narrowband + 5 E wideband:@.";
    Format.fprintf ppf
      "  narrowband blocking %.4f, wideband blocking %.4f (KR recursion)@."
      b1 b6
  | _ -> assert false);

  Format.fprintf ppf
    "@.network experiment (quadrangle, both classes, %s):@."
    (Config.describe config);
  let kr = Multirate_exp.kaufman_roberts_check () in
  let points = Multirate_exp.run ~config () in
  Multirate_exp.print ppf (kr, points);
  let ok =
    List.for_all
      (fun p ->
        List.assoc "mr-controlled" p.Multirate_exp.schemes
        <= List.assoc "mr-single-path" p.Multirate_exp.schemes +. 0.01)
      points
  in
  Format.fprintf ppf
    "controlled never worse than single-path on bandwidth blocking: %b@." ok
