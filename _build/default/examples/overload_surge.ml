(* Focused overload: the Thanksgiving scenario from the paper's
   introduction.  Mid-run, all traffic to and from one backbone node
   surges severalfold; the time series shows the uncontrolled scheme's
   overflow traffic hurting the whole network while state protection
   contains the damage.

   Run with: dune exec examples/overload_surge.exe [-- quick] *)

open Arnet_experiments

let () =
  let config =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then Config.quick
    else Config.paper
  in
  let ppf = Format.std_formatter in
  Format.fprintf ppf "NSFNet focused overload (%s)@."
    (Config.describe config);
  let r = Overload_exp.run ~surge_factor:4. ~config () in
  Overload_exp.print ppf r;
  let during name = List.assoc name r.Overload_exp.during_surge in
  Format.fprintf ppf
    "@.during the surge, controlled blocking (%s) stays below both \
     uncontrolled (%s) and single-path (%s).@."
    (Report.pct (during "controlled"))
    (Report.pct (during "uncontrolled"))
    (Report.pct (during "single-path"))
