(* Quickstart: build a network, compute protection levels, and compare
   single-path, uncontrolled and controlled alternate routing on it.

   Run with: dune exec examples/quickstart.exe *)

open Arnet_topology
open Arnet_paths
open Arnet_traffic
open Arnet_sim
open Arnet_core

let () =
  (* A 5-node ring with one chord: sparse enough that alternates matter. *)
  let graph =
    Graph.of_edges ~nodes:5 ~capacity:40
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (1, 4) ]
  in
  Printf.printf "network: %d nodes, %d directed links, capacity 40 each\n"
    (Graph.node_count graph) (Graph.link_count graph);

  (* Tier 1: the state-independent route table (min-hop primaries) plus
     all loop-free alternates in attempt order. *)
  let routes = Route_table.build graph in
  let p = Route_table.primary routes ~src:0 ~dst:2 in
  Printf.printf "primary 0->2: %s; alternates tried in order: %s\n"
    (Path.to_string p)
    (String.concat " "
       (List.map Path.to_string (Route_table.alternates routes ~src:0 ~dst:2)));

  (* Offered traffic: 12 Erlangs between every ordered pair. *)
  let matrix = Matrix.uniform ~nodes:5 ~demand:12. in

  (* Tier 2: per-link protection levels from Equation 1 loads and the
     Section 3.1 rule.  Each link only needs its own primary demand. *)
  let reserves = Protection.levels routes matrix ~h:(Route_table.h routes) in
  let loads = Loads.primary_link_loads routes matrix in
  Printf.printf "per-link primary load and protection level:\n";
  Graph.iter_links
    (fun l ->
      Printf.printf "  %d->%d: lambda=%5.1f r=%d\n" l.Link.src l.Link.dst
        loads.(l.Link.id) reserves.(l.Link.id))
    graph;

  (* Simulate the three schemes against identical workloads. *)
  let policies =
    [ Scheme.single_path routes;
      Scheme.uncontrolled routes;
      Scheme.controlled ~reserves routes ]
  in
  let results =
    Engine.replicate ~seeds:[ 1; 2; 3; 4; 5 ] ~duration:110. ~graph ~matrix
      ~policies ()
  in
  Printf.printf "blocking over 5 seeds (mean +/- stderr):\n";
  List.iter
    (fun (name, runs) ->
      let s = Stats.blocking_summary runs in
      Printf.printf "  %-13s %.4f +/- %.4f\n" name s.Stats.mean
        s.Stats.std_error)
    results;
  let bound = Arnet_bound.Erlang_bound.compute graph matrix in
  Printf.printf "erlang cut-set lower bound: %.4f\n" bound
