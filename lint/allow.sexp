; Shared-state allowlist for `arn lint --source` (see Allowlist in
; lib/analysis and DESIGN.md, "shared-state budget").  Every entry
; declares one intentional process-wide mutable site with the reason it
; is safe under OCaml 5 domains.  Keep this list short: the CI lint job
; fails on any site not declared here, and entries that stop matching
; are flagged stale (SRC008).

; The benchmark odometer: workers race on purpose, Atomic.fetch_and_add
; keeps the count exact and the racy reads only feed calls/sec output.
((file lib/sim/engine.ml)
 (ident simulated_calls)
 (code SRC101)
 (reason "Atomic odometer; increments are fetch_and_add, reads feed reporting only"))

; Exception-printer registrations run once at link time, before any
; domain is spawned, and Printexc's own table is thread-safe.
((file lib/sim/engine.ml)
 (ident Printexc.register_printer)
 (code SRC006)
 (reason "printer registered at link time before any Domain.spawn; never re-run"))
((file lib/pool/arnet_pool.ml)
 (ident Printexc.register_printer)
 (code SRC006)
 (reason "printer registered at link time before any Domain.spawn; never re-run"))

; The check registry is written only by top-level Check.register calls
; at link time; every later access (arn lint, tests) is a read.
((file lib/analysis/check.ml)
 (ident registry)
 (code SRC001)
 (reason "mutated only by link-time register calls on the main domain; read-only afterwards"))

; Student-t quantile lookup table: OCaml float arrays are always
; mutable, but nothing ever writes this one after initialization.
((file lib/sim/stats.ml)
 (ident t_quantile_95)
 (code SRC004)
 (reason "read-only constant lookup table; no write site exists"))

; NSFNET node names: a string array constant, never written.
((file lib/topology/nsfnet.ml)
 (ident labels)
 (code SRC004)
 (reason "read-only constant label table; no write site exists"))

; Test fixtures and harness state (the CI lint job also scans test/).
((file test/test_obs.ml)
 (ident specimen_events)
 (code SRC004)
 (reason "read-only specimen trace compared against golden output; never written"))
((file test/test_service.ml)
 (ident socket_path)
 (code SRC001)
 (reason "unique-socket-name counter; tests call it sequentially from the main thread"))
