(* Intentionally broken: an unguarded top-level ref that worker code
   reaches through Main -> Mypool.run.  The linter must report SRC001
   at error severity for this site. *)

let hits = ref 0

let bump () = incr hits
