(* The spawning entry-point caller: the closure handed to Mypool.run
   executes on a worker domain and mutates Counter.hits, so Counter is
   domain-reachable. *)

let () = Mypool.run (fun () -> Counter.bump ())
