(* Intentionally-broken fixture for the CI lint job: a minimal domain
   pool.  No dune stanza covers this directory, so the build never
   compiles it — only `arn lint --source --src lint/fixtures` reads it
   (and must exit 1; see .github/workflows/ci.yml and
   test/test_src_check.ml). *)

let run f =
  let d = Domain.spawn f in
  Domain.join d
